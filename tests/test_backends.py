"""Backend equivalence: serial / thread / process produce identical runs.

The process backend's whole contract is that moving the fused partial
phase into worker processes changes *nothing observable* except wall
time: result arrays are sha256-identical, the simulated timeline and SCR
cache stats match field for field, and no shared-memory segment or
worker process outlives the engine — even when a worker is SIGKILLed
mid-run (the engine degrades to the thread backend and recomputes).
"""

from __future__ import annotations

import hashlib
import os
import signal

import numpy as np
import pytest

from repro.algorithms.bfs import BFS
from repro.algorithms.cc import ConnectedComponents
from repro.algorithms.kcore import KCore
from repro.algorithms.pagerank import PageRank
from repro.algorithms.spmv import SpMV
from repro.algorithms.sssp import SSSP
from repro.engine.config import EngineConfig
from repro.engine.gstore import GStoreEngine
from repro.errors import StorageError
from repro.format.tiles import TiledGraph
from repro.graphgen.rmat import rmat
from repro.runtime.threads import LIVE_SHM_SEGMENTS

ALGOS = {
    "bfs": lambda: BFS(root=0),
    "pagerank": lambda: PageRank(max_iterations=15, tolerance=1e-10),
    "spmv": lambda: SpMV(iterations=3),
    "cc": lambda: ConnectedComponents(),
    "kcore": lambda: KCore(k=4),
}

#: (backend, workers) grid: thread gets 3 workers and process 2 so the
#: two parallel backends also cross-check at *different* worker counts —
#: the shard structure (and so the result) must not care.
BACKENDS = [("serial", 1), ("thread", 3), ("process", 2)]

DEPTHS = [0, 2]


@pytest.fixture(scope="module")
def graph() -> TiledGraph:
    el = rmat(9, edge_factor=8, seed=77)
    return TiledGraph.from_edge_list(el, tile_bits=6, group_q=4)


def _run(
    tg, factory, backend, workers,
    depth=2, trace=False, selective=True, shards=None,
):
    # Tiny budget: several slide batches per iteration plus cache
    # pressure, so rewind, evictions, and multi-batch dispatch all run.
    # shards=None resolves through REPRO_SHARDS, so the equivalence
    # matrix also exercises shard-parallel execution when CI sets it.
    cfg = EngineConfig(
        memory_bytes=24 * 1024,
        segment_bytes=4 * 1024,
        backend=backend,
        workers=workers,
        prefetch_depth=depth,
        trace=trace,
        selective=selective,
        shards=shards,
    )
    with GStoreEngine(tg, cfg) as engine:
        algo = factory()
        stats = engine.run(algo)
        live = engine.backend_resolved
    return algo.result().copy(), stats, live


def _sha(arr: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()


@pytest.mark.parametrize("name", sorted(ALGOS))
def test_backend_equivalence(graph, name):
    """Results and the full observable run are identical on every backend
    at every prefetch depth — sha256 on the result bytes, so 'identical'
    means bit-identical, not approximately equal."""
    factory = ALGOS[name]
    ref_result, ref_stats, _ = _run(graph, factory, "serial", 1, depth=0)
    ref_hash = _sha(ref_result)
    for backend, workers in BACKENDS:
        for depth in DEPTHS:
            result, stats, live = _run(
                graph, factory, backend, workers, depth=depth
            )
            assert live == backend, (name, backend, depth)
            assert _sha(result) == ref_hash, (name, backend, depth)
            assert stats.edges_processed == ref_stats.edges_processed
            assert len(stats.iterations) == len(ref_stats.iterations)
            assert stats.sim_elapsed == pytest.approx(ref_stats.sim_elapsed)
            assert stats.io_time == pytest.approx(ref_stats.io_time)
            assert stats.bytes_read == ref_stats.bytes_read
            assert stats.tiles_fetched == ref_stats.tiles_fetched
            assert stats.extra["scr"] == ref_stats.extra["scr"]
            ex = stats.extra["execution"]
            assert ex["backend"] == backend
            assert ex["backend_resolved"] == backend
    assert not LIVE_SHM_SEGMENTS


#: The frontier-driven algorithms: every one implements ``rows_active``
#: (plus column/tile predicates where the kernel is bidirectional), so
#: selective scheduling thins their fetch sets per iteration.  BFS runs
#: direction-optimised here — the push/pull switch and the AND tile mask
#: are exactly the parts that must stay bit-identical across modes.
FRONTIER_ALGOS = {
    "bfs": lambda: BFS(root=0, direction_optimizing=True),
    "sssp": lambda: SSSP(root=0),
    "cc": lambda: ConnectedComponents(),
    "kcore": lambda: KCore(k=4),
}


@pytest.mark.parametrize("name", sorted(FRONTIER_ALGOS))
def test_selective_matrix(graph, name):
    """Selective execution is an I/O optimisation, never a semantic one:
    for every frontier algorithm, {selective on, off} x all three
    backends x prefetch depths 0/2 produce sha256-identical results, and
    within each mode the full simulated run (timeline, bytes, SCR stats)
    is identical on every backend at every depth."""
    factory = FRONTIER_ALGOS[name]
    mode_ref = {}
    for selective in (False, True):
        result, stats, _ = _run(
            graph, factory, "serial", 1, depth=0, selective=selective
        )
        mode_ref[selective] = (_sha(result), stats)
    # Cross-mode: skipping inactive tiles changes no result bit.
    assert mode_ref[True][0] == mode_ref[False][0], name
    # Dense mode never skips; selective mode must actually skip where the
    # frontier collapses below row granularity on this small graph (CC's
    # changed set spans all 8 tile rows until it converges — its savings
    # need the larger grids of test_selective_engine.py).
    assert mode_ref[False][1].tiles_skipped == 0
    if name != "cc":
        assert mode_ref[True][1].bytes_skipped > 0, name
    assert (
        mode_ref[True][1].bytes_read + mode_ref[True][1].bytes_from_cache
        <= mode_ref[False][1].bytes_read
        + mode_ref[False][1].bytes_from_cache
    )
    for selective in (False, True):
        ref_hash, ref_stats = mode_ref[selective]
        for backend, workers in BACKENDS:
            for depth in DEPTHS:
                result, stats, live = _run(
                    graph, factory, backend, workers,
                    depth=depth, selective=selective,
                )
                key = (name, selective, backend, depth)
                assert live == backend, key
                assert _sha(result) == ref_hash, key
                assert stats.edges_processed == ref_stats.edges_processed, key
                assert len(stats.iterations) == len(ref_stats.iterations)
                assert stats.sim_elapsed == pytest.approx(
                    ref_stats.sim_elapsed
                ), key
                assert stats.io_time == pytest.approx(ref_stats.io_time), key
                assert stats.bytes_read == ref_stats.bytes_read, key
                assert stats.tiles_fetched == ref_stats.tiles_fetched, key
                assert stats.bytes_skipped == ref_stats.bytes_skipped, key
                assert stats.tiles_skipped == ref_stats.tiles_skipped, key
                assert stats.extra["scr"] == ref_stats.extra["scr"], key
                assert stats.extra["execution"]["selective"] == selective
    assert not LIVE_SHM_SEGMENTS


def test_process_backend_records_counters(graph):
    """A traced process run exposes the backend gauge, shm traffic, and
    per-worker kernel spans.  Pinned to shards=1: this test asserts the
    process *backend*'s internals, which shard mode bypasses."""
    _, stats, live = _run(
        graph, ALGOS["pagerank"], "process", 2, trace=True, shards=1
    )
    assert live == "process"
    counters = stats.extra["counters"]
    assert counters["engine.backend"] == 2  # BACKEND_CODES["process"]
    assert counters["process.shards"] > 0
    assert counters["shm.bytes_written"] > 0
    assert counters["shm.segments"] >= 1
    assert counters["process.kernel_seconds"] > 0
    assert not LIVE_SHM_SEGMENTS


def test_serial_backend_ignores_workers(graph):
    """backend='serial' is the debugging walk: workers>1 notwithstanding,
    kernels run on the engine thread with no pools."""
    cfg = EngineConfig(
        memory_bytes=24 * 1024, segment_bytes=4 * 1024,
        backend="serial", workers=4,
    )
    with GStoreEngine(graph, cfg) as engine:
        assert engine.kernel_workers == 1
        algo = ALGOS["bfs"]()
        engine.run(algo)
        assert engine._ppool is None


def test_env_default_backend(graph, monkeypatch):
    """backend=None resolves through REPRO_BACKEND — how CI runs the
    whole suite under the process backend without touching any test."""
    monkeypatch.setenv("REPRO_BACKEND", "serial")
    cfg = EngineConfig(memory_bytes=24 * 1024, segment_bytes=4 * 1024)
    with GStoreEngine(graph, cfg) as engine:
        assert engine.backend == "serial"
    monkeypatch.setenv("REPRO_BACKEND", "nonsense")
    with pytest.raises(ValueError):
        GStoreEngine(graph, cfg)


def test_config_rejects_unknown_backend():
    with pytest.raises(StorageError):
        EngineConfig(backend="gpu")


def test_fallback_when_shared_memory_unavailable(graph, monkeypatch):
    """No /dev/shm (or a sandboxed container): the engine degrades to the
    thread backend at pool creation and the run still matches serial."""

    def no_shm(*a, **k):
        raise OSError("shared memory unavailable")

    monkeypatch.setattr(
        "multiprocessing.shared_memory.SharedMemory", no_shm
    )
    ref_result, _, _ = _run(graph, ALGOS["bfs"], "serial", 1)
    result, stats, live = _run(graph, ALGOS["bfs"], "process", 2)
    assert live == "thread"
    assert np.array_equal(result, ref_result)
    ex = stats.extra["execution"]
    assert ex["backend"] == "process"
    assert ex["backend_resolved"] == "thread"
    assert not LIVE_SHM_SEGMENTS


def test_worker_crash_degrades_and_stays_correct(graph):
    """SIGKILL every worker process mid-engine: the next batch raises
    inside the pool, the engine recomputes it on threads, and the final
    result is still bit-identical — with nothing leaked.  Pinned to
    shards=1 so the batches actually flow through the process pool."""
    ref_result, _, _ = _run(graph, ALGOS["pagerank"], "serial", 1, shards=1)
    cfg = EngineConfig(
        memory_bytes=24 * 1024, segment_bytes=4 * 1024,
        backend="process", workers=2, shards=1,
    )
    with GStoreEngine(graph, cfg) as engine:
        assert engine.warm_backend() == "process"
        for proc in engine._ppool.processes:
            os.kill(proc.pid, signal.SIGKILL)
        algo = ALGOS["pagerank"]()
        stats = engine.run(algo)
        assert engine.backend_resolved == "thread"
        assert engine._ppool is None  # torn down by the fallback
        assert stats.extra["execution"]["backend_resolved"] == "thread"
        assert np.array_equal(algo.result(), ref_result)
    assert not LIVE_SHM_SEGMENTS


def test_close_tears_down_process_runtime(graph):
    cfg = EngineConfig(
        memory_bytes=24 * 1024, segment_bytes=4 * 1024,
        backend="process", workers=2, shards=1,
    )
    engine = GStoreEngine(graph, cfg)
    assert engine.warm_backend() == "process"
    procs = engine._ppool.processes
    assert procs and all(p.is_alive() for p in procs)
    assert LIVE_SHM_SEGMENTS  # arena is live while the engine is
    engine.close()
    assert engine._ppool is None and engine._arena is None
    assert not any(p.is_alive() for p in procs)
    assert not LIVE_SHM_SEGMENTS
    engine.close()  # idempotent


# --------------------------------------------------------------------- #
# Shard-parallel execution (coordinator + persistent shard workers)
# --------------------------------------------------------------------- #

#: The shard-capable algorithm set: fused + process-kernel contract.
#: BFS runs direction-optimised — the push/pull switch must survive
#: having its batches computed on worker snapshots.
SHARD_ALGOS = {
    "bfs": lambda: BFS(root=0, direction_optimizing=True),
    "pagerank": lambda: PageRank(max_iterations=15, tolerance=1e-10),
    "cc": lambda: ConnectedComponents(),
    "kcore": lambda: KCore(k=4),
}


@pytest.mark.parametrize("selective", [False, True])
def test_shard_matrix(graph, selective):
    """Shard-parallel execution changes nothing observable but wall time:
    for every shard-capable algorithm, shards {2, 4} x selective {on, off}
    are sha256-identical to the single-process serial run, with the full
    simulated timeline and SCR stats matching field for field.  One
    engine per shard count is reused across all four algorithms — the
    persistent workers serve heterogeneous kernels back to back."""
    refs = {}
    for name, factory in SHARD_ALGOS.items():
        result, stats, _ = _run(
            graph, factory, "serial", 1,
            depth=0, selective=selective, shards=1,
        )
        refs[name] = (_sha(result), stats)
    for shards in (2, 4):
        cfg = EngineConfig(
            memory_bytes=24 * 1024,
            segment_bytes=4 * 1024,
            backend="serial",
            workers=1,
            prefetch_depth=2,
            selective=selective,
            shards=shards,
        )
        with GStoreEngine(graph, cfg) as engine:
            for name, factory in SHARD_ALGOS.items():
                algo = factory()
                stats = engine.run(algo)
                key = (name, shards, selective)
                ref_hash, ref_stats = refs[name]
                assert _sha(algo.result()) == ref_hash, key
                assert stats.edges_processed == ref_stats.edges_processed, key
                assert len(stats.iterations) == len(ref_stats.iterations)
                assert stats.sim_elapsed == pytest.approx(
                    ref_stats.sim_elapsed
                ), key
                assert stats.io_time == pytest.approx(ref_stats.io_time), key
                assert stats.bytes_read == ref_stats.bytes_read, key
                assert stats.tiles_fetched == ref_stats.tiles_fetched, key
                assert stats.bytes_skipped == ref_stats.bytes_skipped, key
                assert stats.extra["scr"] == ref_stats.extra["scr"], key
                ex = stats.extra["execution"]
                assert ex["shards"] == shards, key
                assert ex["shards_resolved"] == shards, key
    assert not LIVE_SHM_SEGMENTS


def test_shard_counters_and_worker_tracks(graph):
    """A traced sharded run exposes the shard counters and places each
    worker's batch spans on its own trace track."""
    cfg = EngineConfig(
        memory_bytes=24 * 1024, segment_bytes=4 * 1024,
        backend="serial", workers=1, shards=2, trace=True,
    )
    with GStoreEngine(graph, cfg) as engine:
        algo = SHARD_ALGOS["pagerank"]()
        stats = engine.run(algo)
        counters = stats.extra["counters"]
        assert counters["shard.batches"] > 0
        assert counters["shard.bytes_read"] == stats.bytes_read
        assert counters["shard.worker_seconds"] > 0
        assert "shard.fallbacks" not in counters
        tracks = {
            r.track
            for r in engine.tracer.records()
            if r.track.startswith("repro-shard-")
        }
        assert tracks == {"repro-shard-0", "repro-shard-1"}
    assert not LIVE_SHM_SEGMENTS


def test_shard_gating_unsupported_algorithm(graph):
    """An algorithm without the process-kernel contract (SSSP) silently
    runs single-process even when shards are configured."""
    factory = lambda: SSSP(root=0)  # noqa: E731
    ref_result, _, _ = _run(graph, factory, "serial", 1, shards=1)
    result, stats, _ = _run(graph, factory, "serial", 1, shards=2)
    assert np.array_equal(result, ref_result)
    ex = stats.extra["execution"]
    assert ex["shards"] == 2
    assert ex["shards_resolved"] == 1
    assert not LIVE_SHM_SEGMENTS


def test_env_default_shards(graph, monkeypatch):
    """shards=None resolves through REPRO_SHARDS — how CI runs the whole
    suite sharded without touching any test."""
    monkeypatch.setenv("REPRO_SHARDS", "2")
    cfg = EngineConfig(memory_bytes=24 * 1024, segment_bytes=4 * 1024)
    with GStoreEngine(graph, cfg) as engine:
        assert engine.shards == 2
    monkeypatch.setenv("REPRO_SHARDS", "0")
    with pytest.raises(ValueError):
        GStoreEngine(graph, cfg)


def test_config_rejects_bad_shards():
    with pytest.raises(StorageError):
        EngineConfig(shards=0)


def test_shard_fallback_when_shared_memory_unavailable(graph, monkeypatch):
    """No /dev/shm: the scatter-arena probe fails *before* any worker is
    spawned and the run completes single-process, bit-identical."""

    def no_shm(*a, **k):
        raise OSError("shared memory unavailable")

    ref_result, _, _ = _run(graph, SHARD_ALGOS["bfs"], "serial", 1, shards=1)
    monkeypatch.setattr(
        "multiprocessing.shared_memory.SharedMemory", no_shm
    )
    result, stats, _ = _run(graph, SHARD_ALGOS["bfs"], "serial", 1, shards=2)
    assert np.array_equal(result, ref_result)
    ex = stats.extra["execution"]
    assert ex["shards"] == 2
    assert ex["shards_resolved"] == 1
    assert not LIVE_SHM_SEGMENTS


def test_close_tears_down_shard_runtime(graph):
    cfg = EngineConfig(
        memory_bytes=24 * 1024, segment_bytes=4 * 1024,
        backend="serial", workers=1, shards=2,
    )
    engine = GStoreEngine(graph, cfg)
    engine.warm_backend()
    rt = engine._shard_rt
    assert rt is not None and not rt.broken
    procs = rt.processes
    assert len(procs) == 2 and all(p.is_alive() for p in procs)
    assert LIVE_SHM_SEGMENTS  # the scatter arena is live with the engine
    engine.close()
    assert engine._shard_rt is None
    assert not any(p.is_alive() for p in procs)
    assert not LIVE_SHM_SEGMENTS
    engine.close()  # idempotent
