"""Smoke + shape tests for every experiment runner (tiny tier).

These assert the *direction* of each paper result; the benchmarks under
``benchmarks/`` run the same functions at the larger default tier.
"""

import pytest

import repro.bench.experiments as E


class TestTables:
    def test_table1_reports_both_conversions(self):
        tbl, data = E.table1_conversion(datasets=["kron-small-16"])
        csr_s, gs_s = data["kron-small-16"]
        assert csr_s > 0 and gs_s > 0
        assert "kron-small-16" in tbl.render()

    def test_table2_space_savings(self):
        _, data = E.table2_sizes()
        # Undirected local graphs: full 8x vs edge list (tiny tile bits
        # keep 2-byte tuples as well).
        assert data["kron-small-16"].saving_vs_edge_list >= 4.0
        # Paper rows exact.
        assert data["paper:Kron-33-16"].saving_vs_edge_list == 8.0

    def test_table3_runs_and_orders(self):
        _, data = E.table3_large_graphs(datasets=["kron-small-16"])
        row = data["kron-small-16"]
        assert row["bfs"].sim_elapsed > 0
        assert row["pagerank"].sim_elapsed > row["cc"].sim_elapsed * 0.5
        assert row["bfs"].mteps() > 0


class TestObservations:
    def test_fig2a_halving_tuples_near_doubles(self):
        _, times = E.fig2a_tuple_size()
        speedup = times[16] / times[8]
        assert 1.7 < speedup < 2.2  # paper: ~2x

    def test_fig2c_flat(self):
        _, times = E.fig2c_streaming_memory()
        vals = list(times.values())
        assert max(vals) / min(vals) < 1.2  # paper: essentially flat

    @pytest.mark.slow
    def test_fig2b_localisation_helps(self):
        # Real wall-clock measurement — take the min of several repeats to
        # ride out scheduler noise, and compare best-partitioned against
        # unpartitioned with a small tolerance.
        _, times = E.fig2b_partitions(
            scale_vertices=1 << 19,
            n_edges=(1 << 19) * 6,
            partition_counts=(1, 8, 64),
            repeats=4,
        )
        assert min(times[8], times[64]) < times[1] * 1.02


class TestDistributions:
    def test_fig5_skew(self):
        _, data = E.fig5_tile_distribution()
        assert data["frac_empty"] > 0.2  # paper: 40%
        assert data["frac_small"] > 0.8  # paper: 82%

    def test_fig7_group_spread(self):
        _, data = E.fig7_group_distribution()
        counts = data["counts_sorted"]
        assert counts[0] > 10 * max(1, counts[-1])  # orders of magnitude


class TestComparisons:
    def test_vs_xstream_direction(self):
        _, data = E.vs_xstream(datasets=["kron-small-16"])
        s = data["kron-small-16"]
        # Paper: 17x/21x/32x at full scale; assert a solid win here.
        assert s["bfs"] > 2
        assert s["pagerank"] > 4
        assert s["cc"] > 2

    def test_fig9_vs_flashgraph_direction(self):
        _, data = E.fig9_vs_flashgraph(datasets=["friendster-small"])
        und = data["friendster-small-u"]
        # Paper: ~1.4x BFS, ~2x PR, >1.5x CC on undirected graphs.
        assert und["bfs"] > 1.0
        assert und["pagerank"] > 1.3
        assert und["cc"] > 1.0


class TestAblations:
    def test_fig10_ordering(self):
        _, times = E.fig10_space_saving()
        for algo in ["bfs", "pagerank"]:
            base = times["base"][algo]
            sym = times["symmetry"][algo]
            snb = times["symmetry+snb"][algo]
            assert base > sym > snb  # each saving helps
            assert base / sym > 1.5  # symmetry ~2x
            assert base / snb > 3.0  # symmetry+SNB >= 4x-ish

    def test_fig11_12_u_shape(self):
        tbl, results = E.fig11_12_grouping()
        qs = sorted(results)
        misses = [results[q]["misses"] for q in qs]
        # Interior minimum: the best grouping beats both extremes.
        assert min(misses) <= misses[0]
        assert min(misses) <= misses[-1]

    def test_fig13_scr_wins(self):
        _, data = E.fig13_scr()
        for algo in ["bfs", "pagerank", "cc"]:
            assert data[algo]["speedup"] > 1.2
            assert data[algo]["bytes_scr"] < data[algo]["bytes_base"]

    def test_fig14_monotone_in_memory(self):
        _, data = E.fig14_cache_size(datasets=("kron-small-16",))
        for (name, algo), times in data.items():
            assert times[-1] <= times[0] * 1.05  # more memory never hurts

    def test_fig15_scaling_shape(self):
        _, data = E.fig15_ssd_scaling(dataset="kron-small-16")
        for algo, times in data.items():
            assert times[1] < times[0]  # 2 SSDs beat 1
            assert times[-1] <= times[0]

    def test_ablation_io_modes_ordering(self):
        _, times = E.ablation_io_modes()
        assert times["aio+overlap"] <= times["sync, no overlap"]

    def test_ablation_degree_compression(self):
        _, data = E.ablation_degree_compression()
        assert data["compressed"] < data["plain"]
        assert data["overflow_entries"] < 32768
