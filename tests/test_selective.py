"""Unit tests for selective tile fetching and request merging (§V-B)."""

import numpy as np

from repro.engine.selective import merge_requests, select_positions, slice_run
from repro.format.startedge import StartEdgeIndex


class TestSelectPositions:
    def test_all_rows_active_selects_nonempty(self, tiled_undirected):
        tg = tiled_undirected
        rows = np.ones(tg.p, dtype=bool)
        pos = select_positions(tg, rows)
        counts = tg.tile_edge_counts()
        assert pos.tolist() == [
            p for p in range(tg.n_tiles) if counts[p] > 0
        ]

    def test_returns_int64_ndarray(self, tiled_undirected):
        # The fetch set stays an int64 array end to end — callers
        # fancy-index with it directly, no list round-trips.
        pos = select_positions(
            tiled_undirected, np.ones(tiled_undirected.p, dtype=bool)
        )
        assert isinstance(pos, np.ndarray)
        assert pos.dtype == np.int64

    def test_no_rows_active_selects_nothing(self, tiled_undirected):
        rows = np.zeros(tiled_undirected.p, dtype=bool)
        pos = select_positions(tiled_undirected, rows)
        assert isinstance(pos, np.ndarray)
        assert pos.size == 0

    def test_single_row_selection_undirected(self, tiled_undirected):
        tg = tiled_undirected
        rows = np.zeros(tg.p, dtype=bool)
        rows[0] = True
        pos = select_positions(tg, rows)
        for p in pos:
            assert tg.tile_rows[p] == 0 or tg.tile_cols[p] == 0

    def test_positions_in_disk_order(self, tiled_undirected):
        rows = np.ones(tiled_undirected.p, dtype=bool)
        pos = select_positions(tiled_undirected, rows)
        assert pos.tolist() == sorted(pos.tolist())

    def test_matches_dense_positions_when_all_active(self, tiled_undirected):
        from repro.engine.selective import dense_positions

        tg = tiled_undirected
        pos = select_positions(tg, np.ones(tg.p, dtype=bool))
        np.testing.assert_array_equal(pos, dense_positions(tg))


class TestMergeRequests:
    def _idx(self, counts):
        return StartEdgeIndex.from_counts(counts, tuple_bytes=4)

    def test_adjacent_tiles_merge(self):
        idx = self._idx([5, 5, 5])
        reqs = merge_requests([0, 1, 2], idx)
        assert len(reqs) == 1
        assert reqs[0].offset == 0
        assert reqs[0].size == 60
        assert reqs[0].tag == [0, 1, 2]

    def test_gap_breaks_run(self):
        idx = self._idx([5, 5, 5])
        reqs = merge_requests([0, 2], idx)
        assert len(reqs) == 2
        assert reqs[0].tag == [0]
        assert reqs[1].tag == [2]

    def test_empty_tile_gap_is_still_adjacent(self):
        # An unneeded *empty* tile between two needed ones occupies zero
        # bytes, so the byte extents remain adjacent and merge.
        idx = self._idx([5, 0, 5])
        reqs = merge_requests([0, 2], idx)
        assert len(reqs) == 1
        assert reqs[0].tag == [0, 2]

    def test_empty_input(self):
        idx = self._idx([1])
        assert merge_requests([], idx) == []
        assert merge_requests(np.empty(0, dtype=np.int64), idx) == []

    def test_accepts_ndarray_positions(self):
        # select_positions hands over an int64 array; tags come back as
        # plain python ints either way.
        idx = self._idx([5, 5, 5])
        reqs = merge_requests(np.array([0, 1, 2], dtype=np.int64), idx)
        assert len(reqs) == 1
        assert reqs[0].tag == [0, 1, 2]
        assert all(type(t) is int for t in reqs[0].tag)


class TestSliceRun:
    def test_slices_back_to_tiles(self):
        idx = self._idx = StartEdgeIndex.from_counts([2, 3, 1], tuple_bytes=4)
        payload = bytes(range(24))
        parts = slice_run(payload, [0, 1, 2], idx)
        assert [p for p, _ in parts] == [0, 1, 2]
        assert [len(b) for _, b in parts] == [8, 12, 4]
        assert b"".join(b for _, b in parts) == payload

    def test_slice_partial_run(self):
        idx = StartEdgeIndex.from_counts([2, 3], tuple_bytes=4)
        payload = bytes(range(8, 8 + 12))
        parts = slice_run(payload, [1], idx)
        assert parts == [(1, payload)]
