"""SpMV correctness against scipy.sparse (extension algorithm)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.algorithms.spmv import SpMV
from repro.engine.config import EngineConfig
from repro.engine.gstore import GStoreEngine
from repro.errors import AlgorithmError


def _adjacency(el, symmetric):
    if symmetric:
        canon = el.canonicalized()
        rows = np.concatenate([canon.src, canon.dst]).astype(np.int64)
        cols = np.concatenate([canon.dst, canon.src]).astype(np.int64)
    else:
        rows = el.src.astype(np.int64)
        cols = el.dst.astype(np.int64)
    return sp.coo_matrix(
        (np.ones(rows.shape[0]), (rows, cols)),
        shape=(el.n_vertices, el.n_vertices),
    ).tocsr()


def _run(tg, x=None, iterations=1):
    algo = SpMV(x=x, iterations=iterations)
    GStoreEngine(
        tg, EngineConfig(memory_bytes=64 * 1024, segment_bytes=8 * 1024)
    ).run(algo)
    return algo


class TestCorrectness:
    def test_undirected_ones(self, small_undirected, tiled_undirected):
        algo = _run(tiled_undirected)
        a = _adjacency(small_undirected, symmetric=True)
        expect = a.T @ np.ones(small_undirected.n_vertices)
        assert np.allclose(algo.result(), expect)

    def test_directed_random_vector(self, small_directed, tiled_directed):
        rng = np.random.default_rng(2)
        x = rng.random(small_directed.n_vertices)
        algo = _run(tiled_directed, x=x)
        a = _adjacency(small_directed, symmetric=False)
        expect = a.T @ x
        assert np.allclose(algo.result(), expect)

    def test_chained_iterations_power_step(self, small_undirected, tiled_undirected):
        algo = _run(tiled_undirected, iterations=2)
        a = _adjacency(small_undirected, symmetric=True)
        expect = a.T @ (a.T @ np.ones(small_undirected.n_vertices))
        assert np.allclose(algo.result(), expect)


class TestValidation:
    def test_wrong_shape_rejected(self, tiled_undirected):
        with pytest.raises(AlgorithmError):
            SpMV(x=np.ones(3)).setup(tiled_undirected)

    def test_result_is_y(self, tiled_undirected):
        algo = _run(tiled_undirected)
        assert algo.result() is algo.y
