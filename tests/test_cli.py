"""CLI smoke tests (argument wiring, not re-testing the engines)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "bfs", "kron-small-16"])
        assert args.algorithm == "bfs"
        assert args.memory_fraction == 0.25
        assert not args.no_scr

    def test_bad_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "dijkstra", "kron-small-16"])

    def test_bad_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "fig99"])


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "twitter-small" in out
        assert "Kron-28-16" in out

    def test_info(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert main(["info", "kron-small-16", "--tier", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "tiles:" in out
        assert "tile skew" in out

    def test_convert_and_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "converted"
        assert (
            main(
                [
                    "convert",
                    "kron-small-16",
                    "--tier",
                    "tiny",
                    "--out",
                    str(out_dir),
                ]
            )
            == 0
        )
        assert (out_dir / "tiles.dat").exists()
        assert (out_dir / "start_edge.bin").exists()
        assert (out_dir / "info.json").exists()

    def test_run_bfs(self, capsys):
        assert main(["run", "bfs", "kron-small-16", "--tier", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "gstore/bfs" in out
        assert "MTEPS" in out

    def test_run_base_policy(self, capsys):
        assert (
            main(
                [
                    "run",
                    "pagerank",
                    "kron-small-16",
                    "--tier",
                    "tiny",
                    "--no-scr",
                ]
            )
            == 0
        )
        assert "gstore/pagerank" in capsys.readouterr().out

    def test_bench_table2(self, capsys):
        assert main(["bench", "table2"]) == 0
        assert "Kron-33-16" in capsys.readouterr().out
