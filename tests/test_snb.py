"""Unit tests for SNB tuple packing."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.format.snb import (
    decode_tile_edges,
    encode_tile_edges,
    pack_tuples,
    tile_payload_bytes,
    unpack_tuples,
)


class TestEncodeDecode:
    def test_paper_example(self):
        # §IV-B: tile[1,1] has offset (4,4); edge (4,5) stores as (0,1).
        lsrc, ldst = encode_tile_edges([4], [5], i=1, j=1, tile_bits=2)
        assert lsrc.tolist() == [0]
        assert ldst.tolist() == [1]
        gsrc, gdst = decode_tile_edges(lsrc, ldst, i=1, j=1, tile_bits=2)
        assert gsrc.tolist() == [4]
        assert gdst.tolist() == [5]

    def test_roundtrip_random(self):
        rng = np.random.default_rng(3)
        i, j, t = 5, 9, 8
        lo_s, lo_d = i << t, j << t
        gsrc = (rng.integers(0, 1 << t, 200) + lo_s).astype(np.uint64)
        gdst = (rng.integers(0, 1 << t, 200) + lo_d).astype(np.uint64)
        lsrc, ldst = encode_tile_edges(gsrc, gdst, i, j, t)
        back_s, back_d = decode_tile_edges(lsrc, ldst, i, j, t)
        assert np.array_equal(back_s, gsrc.astype(np.uint32))
        assert np.array_equal(back_d, gdst.astype(np.uint32))

    def test_out_of_tile_rejected(self):
        with pytest.raises(FormatError):
            encode_tile_edges([4], [5], i=0, j=1, tile_bits=2)

    def test_local_dtype_matches_tile_bits(self):
        lsrc, _ = encode_tile_edges([4], [5], i=1, j=1, tile_bits=2)
        assert lsrc.dtype == np.uint8
        lsrc, _ = encode_tile_edges([0], [0], i=0, j=0, tile_bits=16)
        assert lsrc.dtype == np.uint16


class TestPackUnpack:
    def test_roundtrip(self):
        lsrc = np.array([1, 2, 3], dtype=np.uint16)
        ldst = np.array([4, 5, 6], dtype=np.uint16)
        buf = pack_tuples(lsrc, ldst, tile_bits=16)
        assert len(buf) == 12  # 3 edges x 4 bytes
        s, d = unpack_tuples(buf, tile_bits=16)
        assert s.tolist() == [1, 2, 3]
        assert d.tolist() == [4, 5, 6]

    def test_interleaved_layout(self):
        buf = pack_tuples(
            np.array([1], np.uint16), np.array([2], np.uint16), 16
        )
        inter = np.frombuffer(buf, dtype=np.uint16)
        assert inter.tolist() == [1, 2]  # source first

    def test_length_mismatch(self):
        with pytest.raises(FormatError):
            pack_tuples(np.zeros(2, np.uint16), np.zeros(3, np.uint16), 16)

    def test_odd_buffer_rejected(self):
        with pytest.raises(FormatError):
            unpack_tuples(b"\x00\x00\x00\x00\x00\x00", 16)

    def test_empty(self):
        s, d = unpack_tuples(b"", 16)
        assert s.shape == (0,)


class TestPayloadBytes:
    def test_paper_sizes(self):
        # 4 bytes per tuple at the paper's 16-bit tiles.
        assert tile_payload_bytes(1000, 16) == 4000
        # 2 bytes per tuple with 8-bit locals.
        assert tile_payload_bytes(1000, 8) == 2000
