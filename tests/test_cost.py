"""Unit tests for the compute cost model."""

import pytest

from repro.runtime.cost import CostModel


class TestRates:
    def test_known_algorithm(self):
        m = CostModel()
        assert m.rate("bfs") > m.rate("pagerank")  # PR is compute-heavier

    def test_unknown_falls_back(self):
        m = CostModel()
        assert m.rate("mystery") == m.edge_rates["default"]


class TestComputeTime:
    def test_linear_in_edges(self):
        m = CostModel(tile_overhead=0.0)
        t1 = m.compute_time("bfs", 1_000_000)
        t2 = m.compute_time("bfs", 2_000_000)
        assert t2 == pytest.approx(2 * t1)

    def test_tile_overhead_added(self):
        m = CostModel(tile_overhead=1e-6)
        base = m.compute_time("bfs", 1000)
        with_tiles = m.compute_time("bfs", 1000, n_tiles=100)
        assert with_tiles == pytest.approx(base + 1e-4)

    def test_miss_factor_scales_edge_term(self):
        m = CostModel(tile_overhead=0.0)
        assert m.compute_time("bfs", 1000, miss_factor=2.0) == pytest.approx(
            2 * m.compute_time("bfs", 1000)
        )

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CostModel().compute_time("bfs", -1)


class TestScaled:
    def test_scaling_rates(self):
        m = CostModel()
        fast = m.scaled(2.0)
        assert fast.rate("bfs") == 2 * m.rate("bfs")
        assert fast.compute_time("bfs", 1000, 0) < m.compute_time("bfs", 1000, 0)
