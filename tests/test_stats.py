"""Unit tests for run statistics accounting."""

import pytest

from repro.engine.stats import IterationStats, RunStats


def _iter(k, **kw):
    base = dict(io_time=1.0, compute_time=0.5, elapsed=1.0, bytes_read=100,
                bytes_from_cache=50, tiles_fetched=2, tiles_from_cache=1,
                edges_processed=1000)
    base.update(kw)
    return IterationStats(iteration=k, **base)


class TestAccumulation:
    def test_totals(self):
        rs = RunStats(algorithm="bfs")
        rs.add_iteration(_iter(0))
        rs.add_iteration(_iter(1, io_time=2.0, elapsed=2.0))
        assert rs.n_iterations == 2
        assert rs.io_time == pytest.approx(3.0)
        assert rs.sim_elapsed == pytest.approx(3.0)
        assert rs.bytes_read == 200
        assert rs.edges_processed == 2000

    def test_mteps(self):
        rs = RunStats()
        rs.add_iteration(_iter(0, edges_processed=2_000_000, elapsed=2.0))
        assert rs.mteps() == pytest.approx(1.0)

    def test_mteps_zero_time(self):
        assert RunStats().mteps() == 0.0

    def test_cache_hit_fraction(self):
        rs = RunStats()
        rs.add_iteration(_iter(0, bytes_read=100, bytes_from_cache=300))
        assert rs.cache_hit_fraction() == pytest.approx(0.75)

    def test_cache_fraction_no_traffic(self):
        assert RunStats().cache_hit_fraction() == 0.0


class TestSummary:
    def test_mentions_engine_and_graph(self):
        rs = RunStats(engine="gstore", algorithm="pagerank", graph="kron")
        rs.add_iteration(_iter(0))
        text = rs.summary()
        assert "gstore/pagerank" in text
        assert "kron" in text

    def test_written_bytes_shown_when_present(self):
        rs = RunStats(engine="xstream", algorithm="bfs")
        rs.bytes_written = 12345
        rs.add_iteration(_iter(0))
        assert "written" in rs.summary()
