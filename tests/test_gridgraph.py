"""GridGraph baseline: correctness and selective-scheduling structure."""

import numpy as np

from repro.algorithms.bfs import BFS
from repro.algorithms.cc import ConnectedComponents
from repro.algorithms.pagerank import PageRank
from repro.baselines.common import BaselineConfig
from repro.baselines.gridgraph import GridGraphEngine
from repro.engine.config import EngineConfig
from repro.engine.gstore import GStoreEngine


def _bcfg(mem=64 * 1024):
    return BaselineConfig(memory_bytes=mem, segment_bytes=8 * 1024)


def _gstore(tg, algo):
    GStoreEngine(
        tg, EngineConfig(memory_bytes=64 * 1024, segment_bytes=8 * 1024)
    ).run(algo)
    return algo


class TestResultEquivalence:
    def test_bfs_matches(self, small_undirected, tiled_undirected):
        gg = GridGraphEngine(small_undirected, _bcfg(), n_parts=4)
        depth, _ = gg.run_bfs(0)
        ref = _gstore(tiled_undirected, BFS(root=0))
        assert np.array_equal(depth, ref.result())

    def test_pagerank_matches(self, small_undirected, tiled_undirected):
        gg = GridGraphEngine(small_undirected, _bcfg(), n_parts=4)
        rank, _ = gg.run_pagerank(tolerance=1e-12, max_iterations=300)
        ref = _gstore(
            tiled_undirected, PageRank(tolerance=1e-12, max_iterations=300)
        )
        assert np.allclose(rank, ref.result(), atol=1e-10)

    def test_cc_matches(self, small_directed, tiled_directed):
        gg = GridGraphEngine(small_directed, _bcfg(), n_parts=4)
        comp, _ = gg.run_cc()
        ref = _gstore(tiled_directed, ConnectedComponents())
        assert np.array_equal(comp, ref.result())


class TestStructure:
    def test_full_tuples_cost_more_than_gstore(
        self, small_undirected, tiled_undirected
    ):
        gg = GridGraphEngine(small_undirected, _bcfg(mem=4096), n_parts=4)
        _, gg_stats = gg.run_pagerank(max_iterations=2, tolerance=0.0)
        algo = PageRank(max_iterations=2, tolerance=0.0)
        g_stats = GStoreEngine(
            tiled_undirected,
            EngineConfig(memory_bytes=64 * 1024, segment_bytes=8 * 1024),
        ).run(algo)
        # 8B tuples, both directions: ~4x the tile bytes per iteration.
        assert gg_stats.bytes_read > 2 * g_stats.bytes_read

    def test_selective_scheduling_skips_rows(self, small_undirected):
        gg = GridGraphEngine(small_undirected, _bcfg(mem=4096), n_parts=4)
        _, stats = gg.run_bfs(0)
        first = stats.iterations[0].edges_processed
        assert first < gg.grid.n_edges  # only row 0's partitions scanned

    def test_page_cache_reuse_with_big_memory(self, small_undirected):
        big = BaselineConfig(memory_bytes=32 * 1024 * 1024, segment_bytes=8 * 1024)
        gg = GridGraphEngine(small_undirected, big, n_parts=4)
        _, stats = gg.run_pagerank(max_iterations=3, tolerance=0.0)
        assert stats.iterations[1].bytes_read == 0
        assert stats.iterations[1].bytes_from_cache > 0
