"""Unit tests for the simulated SSD device model."""

import pytest

from repro.errors import StorageError
from repro.storage.device import DeviceProfile, SimulatedSSD


def _ssd(bw=100e6, lat=1e-3, qd=4):
    return SimulatedSSD(DeviceProfile(read_bandwidth=bw, latency=lat, queue_depth=qd))


class TestProfileValidation:
    def test_bad_bandwidth(self):
        with pytest.raises(StorageError):
            DeviceProfile(read_bandwidth=0)

    def test_bad_latency(self):
        with pytest.raises(StorageError):
            DeviceProfile(latency=-1)

    def test_bad_queue_depth(self):
        with pytest.raises(StorageError):
            DeviceProfile(queue_depth=0)


class TestBatchTiming:
    def test_single_request(self):
        ssd = _ssd()
        t = ssd.read_batch_time([100_000_000])
        assert t == pytest.approx(1e-3 + 1.0)

    def test_batch_overlaps_latency(self):
        # Four requests at queue depth 4: one latency wave, not four.
        ssd = _ssd()
        t = ssd.read_batch_time([0, 0, 0, 0])
        assert t == pytest.approx(1e-3)

    def test_latency_waves(self):
        # Five requests at depth 4: two waves.
        ssd = _ssd()
        t = ssd.read_batch_time([0] * 5)
        assert t == pytest.approx(2e-3)

    def test_empty_batch(self):
        assert _ssd().read_batch_time([]) == 0.0

    def test_negative_size_rejected(self):
        with pytest.raises(StorageError):
            _ssd().read_batch_time([-1])


class TestSyncVsAio:
    def test_sync_pays_latency_per_request(self):
        # §V-B: AIO batching beats direct synchronous POSIX I/O.
        ssd_a = _ssd()
        ssd_b = _ssd()
        sizes = [1000] * 8
        aio = ssd_a.read_batch_time(sizes)
        sync = ssd_b.read_sync_time(sizes)
        assert sync > aio
        assert sync == pytest.approx(8e-3 + 8000 / 100e6)

    def test_same_bytes_counted(self):
        ssd_a = _ssd()
        ssd_b = _ssd()
        ssd_a.read_batch_time([10, 20])
        ssd_b.read_sync_time([10, 20])
        assert ssd_a.stats.bytes_read == ssd_b.stats.bytes_read == 30


class TestWrite:
    def test_write_time_uses_write_bandwidth(self):
        ssd = SimulatedSSD(
            DeviceProfile(write_bandwidth=50e6, latency=0, queue_depth=1)
        )
        t = ssd.write_batch_time([50_000_000])
        assert t == pytest.approx(1.0)

    def test_write_stats(self):
        ssd = _ssd()
        ssd.write_batch_time([100, 200])
        assert ssd.stats.bytes_written == 300
        assert ssd.stats.write_requests == 2


class TestStats:
    def test_counters_accumulate(self):
        ssd = _ssd()
        ssd.read_batch_time([10])
        ssd.read_batch_time([20, 30])
        assert ssd.stats.bytes_read == 60
        assert ssd.stats.read_requests == 3
        assert ssd.stats.busy_time > 0

    def test_reset(self):
        ssd = _ssd()
        ssd.read_batch_time([10])
        ssd.reset_stats()
        assert ssd.stats.bytes_read == 0
