"""Unit tests for the edge-list format."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.format.edgelist import EdgeList


def _el(pairs, v=None, directed=True):
    return EdgeList.from_pairs(pairs, n_vertices=v, directed=directed)


class TestConstruction:
    def test_from_pairs(self):
        el = _el([(0, 1), (1, 2)])
        assert el.n_edges == 2
        assert el.n_vertices == 3

    def test_explicit_vertex_count(self):
        el = _el([(0, 1)], v=10)
        assert el.n_vertices == 10

    def test_empty(self):
        el = _el([], v=5)
        assert el.n_edges == 0

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(FormatError):
            EdgeList(np.zeros(3, np.uint32), np.zeros(2, np.uint32), 5)

    def test_negative_ids_rejected(self):
        with pytest.raises(FormatError):
            _el([(0, -1)])

    def test_zero_vertices_rejected(self):
        with pytest.raises(FormatError):
            EdgeList(np.zeros(0, np.uint32), np.zeros(0, np.uint32), 0)

    def test_validate_catches_out_of_range(self):
        el = EdgeList(
            np.array([9], np.uint32), np.array([0], np.uint32), 5
        )
        with pytest.raises(FormatError):
            el.validate()


class TestCanonicalize:
    def test_orientation(self):
        el = _el([(3, 1), (1, 3), (0, 2)], directed=False)
        canon = el.canonicalized()
        assert canon.n_edges == 2  # (1,3) deduped, orientation fixed
        assert np.all(canon.src <= canon.dst)

    def test_self_loops_dropped(self):
        el = _el([(1, 1), (0, 1)], directed=False)
        assert el.canonicalized().n_edges == 1

    def test_self_loops_kept_when_asked(self):
        el = _el([(1, 1), (0, 1)], directed=False)
        assert el.canonicalized(drop_self_loops=False).n_edges == 2

    def test_idempotent(self):
        el = _el([(3, 1), (2, 0), (1, 3)], directed=False)
        once = el.canonicalized()
        twice = once.canonicalized()
        assert np.array_equal(once.src, twice.src)
        assert np.array_equal(once.dst, twice.dst)


class TestSymmetrize:
    def test_doubles_edges(self):
        # §IV-A: "an edge (v1, v2) is stored twice" in traditional storage.
        el = _el([(0, 1), (2, 3)], directed=False)
        sym = el.symmetrized()
        assert sym.n_edges == 4
        assert sym.directed

    def test_contains_both_orientations(self):
        el = _el([(0, 1)], v=2, directed=False)
        sym = el.symmetrized()
        pairs = set(zip(sym.src.tolist(), sym.dst.tolist()))
        assert pairs == {(0, 1), (1, 0)}


class TestDegrees:
    def test_out_degrees(self):
        el = _el([(0, 1), (0, 2), (1, 2)])
        assert el.out_degrees().tolist() == [2, 1, 0]

    def test_in_degrees(self):
        el = _el([(0, 1), (0, 2), (1, 2)])
        assert el.in_degrees().tolist() == [0, 1, 2]

    def test_undirected_degrees(self):
        el = _el([(0, 1), (0, 2)], directed=False)
        assert el.degrees().tolist() == [2, 1, 1]

    def test_degrees_cached(self):
        el = _el([(0, 1)])
        assert el.out_degrees() is el.out_degrees()


class TestDedupe:
    def test_removes_duplicates(self):
        el = _el([(0, 1), (0, 1), (1, 0)])
        assert el.deduped().n_edges == 2

    def test_without_self_loops(self):
        el = _el([(0, 0), (0, 1)])
        assert el.without_self_loops().n_edges == 1


class TestStorageBytes:
    def test_eight_bytes_per_tuple(self):
        el = _el([(0, 1)] * 10, v=100)
        assert el.storage_bytes() == 80

    def test_sixteen_bytes_above_2_32(self):
        el = _el([(0, 1)], v=100)
        assert el.storage_bytes(vertex_bytes=8) == 16


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        el = _el([(0, 5), (3, 2), (4, 4)], v=6, directed=False)
        path = tmp_path / "g.bin"
        el.save(path)
        back = EdgeList.load(path, name="loaded")
        assert back.n_vertices == 6
        assert not back.directed
        assert np.array_equal(back.src, el.src)
        assert np.array_equal(back.dst, el.dst)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"NOPE" + b"\x00" * 32)
        with pytest.raises(FormatError):
            EdgeList.load(path)

    def test_repr(self):
        el = _el([(0, 1)], directed=False)
        assert "undirected" in repr(el)
