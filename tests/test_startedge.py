"""Unit tests for the start-edge index file."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.format.startedge import StartEdgeIndex


@pytest.fixture()
def idx():
    # Tiles with 3, 0, 5, 2 edges; 4-byte SNB tuples.
    return StartEdgeIndex.from_counts([3, 0, 5, 2], tuple_bytes=4)


class TestBasics:
    def test_counts(self, idx):
        assert idx.n_tiles == 4
        assert idx.n_edges == 10

    def test_edge_count(self, idx):
        assert idx.edge_count(0) == 3
        assert idx.edge_count(1) == 0
        assert idx.edge_count(2) == 5

    def test_edge_counts_array(self, idx):
        assert idx.edge_counts().tolist() == [3, 0, 5, 2]

    def test_byte_extent(self, idx):
        assert idx.byte_extent(0) == (0, 12)
        assert idx.byte_extent(1) == (12, 0)
        assert idx.byte_extent(2) == (12, 20)
        assert idx.byte_extent(3) == (32, 8)

    def test_run_byte_extent_is_contiguous(self, idx):
        # A physical group (a run of positions) is one sequential read.
        off, size = idx.run_byte_extent(0, 3)
        assert (off, size) == (0, 40)
        off, size = idx.run_byte_extent(1, 2)
        assert (off, size) == (12, 20)

    def test_run_extent_bad_range(self, idx):
        with pytest.raises(FormatError):
            idx.run_byte_extent(2, 1)
        with pytest.raises(FormatError):
            idx.run_byte_extent(0, 9)

    def test_storage_bytes(self, idx):
        assert idx.storage_bytes() == 8 * 5


class TestInvariants:
    def test_must_start_at_zero(self):
        with pytest.raises(FormatError):
            StartEdgeIndex(np.array([1, 2], dtype=np.uint64), 4)

    def test_must_be_monotone(self):
        with pytest.raises(FormatError):
            StartEdgeIndex(np.array([0, 5, 3], dtype=np.uint64), 4)

    def test_empty_rejected(self):
        with pytest.raises(FormatError):
            StartEdgeIndex(np.array([], dtype=np.uint64), 4)


class TestPersistence:
    def test_roundtrip(self, tmp_path, idx):
        p = tmp_path / "se.bin"
        idx.save(p)
        back = StartEdgeIndex.load(p)
        assert back.tuple_bytes == 4
        assert np.array_equal(back.start_edge, idx.start_edge)

    def test_bad_magic(self, tmp_path):
        p = tmp_path / "x.bin"
        p.write_bytes(b"ZZZZ" + b"\x00" * 16)
        with pytest.raises(FormatError):
            StartEdgeIndex.load(p)
