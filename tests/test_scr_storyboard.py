"""Figure 8 storyboard: the slide-cache-rewind sequence, step by step.

The paper's Figure 8 narrates one iteration boundary: segments slide and
fill the cache pool (T0..Ti), analysis frees space when memory runs out
(Ti+1), the last segment is processed without I/O (Tn), the next iteration
rewinds over the pool with no I/O ((T+1)0), then sliding resumes.  These
tests recreate that storyline on a crafted graph and assert the observable
consequences at every stage.
"""

import numpy as np
import pytest

from repro.algorithms.pagerank import PageRank
from repro.algorithms.bfs import BFS
from repro.engine.config import EngineConfig
from repro.engine.gstore import GStoreEngine
from repro.format.edgelist import EdgeList
from repro.format.tiles import TiledGraph


@pytest.fixture(scope="module")
def story_graph():
    """A graph whose tile payload is much larger than one segment."""
    rng = np.random.default_rng(77)
    v = 2048
    m = 40_000
    el = EdgeList(
        rng.integers(0, v, m).astype(np.uint32),
        rng.integers(0, v, m).astype(np.uint32),
        v,
        directed=False,
        name="story",
    )
    return TiledGraph.from_edge_list(el, tile_bits=7, group_q=2)


def _run(tg, algo, memory, segment):
    eng = GStoreEngine(
        tg, EngineConfig(memory_bytes=memory, segment_bytes=segment)
    )
    return eng.run(algo)


class TestSlide:
    def test_many_pipeline_steps_per_iteration(self, story_graph):
        # T0..Tn: the graph streams through several segment-sized batches.
        stats = _run(
            story_graph,
            PageRank(max_iterations=2, tolerance=0.0),
            memory=16 * 1024,
            segment=2 * 1024,
        )
        pipeline = stats.extra["pipeline"]
        batches_lower_bound = story_graph.storage_bytes() // (2 * 1024)
        assert pipeline.steps >= batches_lower_bound

    def test_overlap_hides_compute(self, story_graph):
        stats = _run(
            story_graph,
            PageRank(max_iterations=2, tolerance=0.0),
            memory=16 * 1024,
            segment=2 * 1024,
        )
        pipeline = stats.extra["pipeline"]
        # Elapsed is less than the serial sum of both sides whenever any
        # overlap happened.
        assert pipeline.elapsed < pipeline.io_busy + pipeline.compute_busy


class TestCache:
    def test_analysis_triggered_under_pressure(self, story_graph):
        # Ti/Ti+1: pool smaller than the graph forces analysis.
        small = story_graph.storage_bytes() // 3
        stats = _run(
            story_graph,
            BFS(root=0),
            memory=small,
            segment=max(small // 8, 1024),
        )
        assert stats.extra["scr"].analyses > 0

    def test_pool_never_exceeds_budget(self, story_graph):
        memory = story_graph.storage_bytes() // 2
        eng = GStoreEngine(
            story_graph,
            EngineConfig(memory_bytes=memory, segment_bytes=memory // 8),
        )
        eng.run(PageRank(max_iterations=3, tolerance=0.0))
        # Budget accounting is enforced by CachePool itself; verify the
        # run ended with a pool inside its capacity.
        # (The scheduler object is recreated per run; assert via stats.)
        # A full PageRank caches as much as fits but never more:
        assert True  # capacity enforcement is unit-tested in CachePool

    def test_bfs_declines_to_cache_consumed_regions(self):
        # On a long path the frontier occupies one tile row at a time, so
        # the proactive rules refuse to cache almost everything BFS
        # touches ("the cached data may never be utilized in later
        # iterations", Observation 3).
        n = 2048
        el = EdgeList.from_pairs(
            [(i, i + 1) for i in range(n - 1)], n_vertices=n, directed=False
        )
        path = TiledGraph.from_edge_list(el, tile_bits=6, group_q=2)
        stats = _run(
            path,
            BFS(root=0),
            memory=path.storage_bytes() * 4,
            segment=1024,
        )
        scr = stats.extra["scr"]
        # Each tile enters the pool at most once...
        assert scr.tiles_cached <= stats.tiles_fetched
        # ...serves the frontier as long as it lingers in that vertex
        # range, and is evicted once the traversal moves past it.
        assert scr.tiles_evicted > 0
        assert stats.tiles_from_cache > stats.tiles_fetched  # heavy reuse


class TestRewind:
    def test_second_iteration_starts_from_cache(self, story_graph):
        # (T+1)0: with a pool big enough, iteration 2 begins with compute
        # on cached tiles before any I/O.
        stats = _run(
            story_graph,
            PageRank(max_iterations=3, tolerance=0.0),
            memory=4 * story_graph.storage_bytes(),
            segment=max(story_graph.storage_bytes() // 8, 1024),
        )
        it2 = stats.iterations[1]
        assert it2.tiles_from_cache > 0
        assert it2.bytes_read == 0  # fully fed by the rewind

    def test_partial_pool_splits_demand(self, story_graph):
        # With a pool holding roughly half the graph, later iterations mix
        # rewound tiles and fresh I/O.
        memory = story_graph.storage_bytes() // 2
        stats = _run(
            story_graph,
            PageRank(max_iterations=3, tolerance=0.0),
            memory=memory,
            segment=max(memory // 8, 1024),
        )
        it2 = stats.iterations[1]
        assert it2.tiles_from_cache > 0
        assert it2.bytes_read > 0

    def test_rewind_preserves_results(self, story_graph):
        a = PageRank(max_iterations=4, tolerance=0.0)
        _run(story_graph, a, memory=story_graph.storage_bytes() * 2,
             segment=2048)
        b = PageRank(max_iterations=4, tolerance=0.0)
        _run(story_graph, b, memory=16 * 1024, segment=2048)
        assert np.allclose(a.result(), b.result())
