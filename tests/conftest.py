"""Shared fixtures: deterministic small graphs in several representations."""

from __future__ import annotations

import os

import numpy as np
import pytest

os.environ.setdefault("REPRO_SCALE", "tiny")

from repro.engine.config import EngineConfig
from repro.format.edgelist import EdgeList
from repro.format.tiles import TiledGraph
from repro.graphgen.kronecker import kronecker


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_undirected() -> EdgeList:
    """A connected-ish undirected random graph, 600 vertices."""
    r = np.random.default_rng(7)
    v = 600
    m = 3000
    src = r.integers(0, v, m).astype(np.uint32)
    dst = r.integers(0, v, m).astype(np.uint32)
    # A ring keeps the graph connected so BFS reaches everything.
    ring_src = np.arange(v, dtype=np.uint32)
    ring_dst = np.roll(ring_src, -1)
    return EdgeList(
        np.concatenate([src, ring_src]),
        np.concatenate([dst, ring_dst]),
        v,
        directed=False,
        name="small-undirected",
    )


@pytest.fixture(scope="session")
def small_directed() -> EdgeList:
    """A directed random graph with self-loops removed, 500 vertices."""
    r = np.random.default_rng(11)
    v = 500
    m = 4000
    src = r.integers(0, v, m).astype(np.uint32)
    dst = r.integers(0, v, m).astype(np.uint32)
    el = EdgeList(src, dst, v, directed=True, name="small-directed")
    return el.deduped().without_self_loops()


@pytest.fixture(scope="session")
def kron_small() -> EdgeList:
    """A Graph500 Kronecker graph (undirected, 4096 vertices)."""
    return kronecker(12, edge_factor=8, seed=21)


@pytest.fixture(scope="session")
def tiled_undirected(small_undirected) -> TiledGraph:
    return TiledGraph.from_edge_list(small_undirected, tile_bits=7, group_q=2)


@pytest.fixture(scope="session")
def tiled_directed(small_directed) -> TiledGraph:
    return TiledGraph.from_edge_list(small_directed, tile_bits=7, group_q=2)


@pytest.fixture()
def engine_config() -> EngineConfig:
    """A small semi-external configuration exercising eviction paths."""
    return EngineConfig(memory_bytes=64 * 1024, segment_bytes=8 * 1024)


@pytest.fixture(scope="session")
def nx_undirected(small_undirected):
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(small_undirected.n_vertices))
    canon = small_undirected.canonicalized()
    g.add_edges_from(zip(canon.src.tolist(), canon.dst.tolist()))
    return g


@pytest.fixture(scope="session")
def nx_directed(small_directed):
    import networkx as nx

    g = nx.DiGraph()
    g.add_nodes_from(range(small_directed.n_vertices))
    g.add_edges_from(
        zip(small_directed.src.tolist(), small_directed.dst.tolist())
    )
    return g
