"""Text edge-list I/O (SNAP/KONECT style)."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.format.edgelist import EdgeList
from repro.graphgen.io import read_text_edge_list, write_text_edge_list


class TestRead:
    def test_basic(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("# comment\n0 1\n1 2\n\n% another comment\n2 0\n")
        el = read_text_edge_list(p)
        assert el.n_edges == 3
        assert el.n_vertices == 3
        assert el.src.tolist() == [0, 1, 2]

    def test_extra_columns_ignored(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1 3.5 1290000000\n1 0 2.0 1290000001\n")
        el = read_text_edge_list(p)
        assert el.n_edges == 2

    def test_tabs_and_spaces(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0\t1\n2   3\n")
        el = read_text_edge_list(p)
        assert el.n_edges == 2
        assert el.n_vertices == 4

    def test_explicit_vertex_count(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1\n")
        el = read_text_edge_list(p, n_vertices=100)
        assert el.n_vertices == 100

    def test_directed_flag(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1\n")
        assert not read_text_edge_list(p, directed=False).directed

    def test_bad_line(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0\n")
        with pytest.raises(FormatError):
            read_text_edge_list(p)

    def test_non_integer(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("a b\n")
        with pytest.raises(FormatError):
            read_text_edge_list(p)

    def test_negative_id(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("-1 2\n")
        with pytest.raises(FormatError):
            read_text_edge_list(p)

    def test_empty_file(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("# nothing\n")
        el = read_text_edge_list(p)
        assert el.n_edges == 0
        assert el.n_vertices == 1

    def test_name_defaults_to_filename(self, tmp_path):
        p = tmp_path / "mygraph.txt"
        p.write_text("0 1\n")
        assert read_text_edge_list(p).name == "mygraph.txt"


class TestRoundtrip:
    def test_write_read(self, tmp_path, small_directed):
        p = tmp_path / "g.txt"
        n = write_text_edge_list(small_directed, p)
        assert n == small_directed.n_edges
        back = read_text_edge_list(p, n_vertices=small_directed.n_vertices)
        assert np.array_equal(back.src, small_directed.src)
        assert np.array_equal(back.dst, small_directed.dst)

    def test_header_optional(self, tmp_path):
        el = EdgeList.from_pairs([(0, 1)], n_vertices=2)
        p = tmp_path / "g.txt"
        write_text_edge_list(el, p, header=False)
        assert not p.read_text().startswith("#")

    def test_pipeline_to_tiles(self, tmp_path, small_undirected):
        from repro.format.tiles import TiledGraph

        p = tmp_path / "g.txt"
        write_text_edge_list(small_undirected, p)
        back = read_text_edge_list(
            p, directed=False, n_vertices=small_undirected.n_vertices
        )
        tg1 = TiledGraph.from_edge_list(back, tile_bits=7, group_q=2)
        tg2 = TiledGraph.from_edge_list(small_undirected, tile_bits=7, group_q=2)
        assert np.array_equal(tg1.payload, tg2.payload)
