"""Unit tests for the benchmark harness (graph cache, scaled configs)."""

import pytest

from repro.bench.harness import (
    GraphCache,
    graphs,
    scaled_baseline_config,
    scaled_config,
)
from repro.memory.scr import CachePolicy


class TestGraphCache:
    def test_edge_list_memoised(self):
        c = GraphCache()
        a = c.edge_list("kron-small-16", tier="tiny")
        b = c.edge_list("kron-small-16", tier="tiny")
        assert a is b

    def test_tiled_memoised_by_flags(self):
        c = GraphCache()
        a = c.tiled("kron-small-16", tier="tiny")
        b = c.tiled("kron-small-16", tier="tiny")
        d = c.tiled("kron-small-16", tier="tiny", snb=False)
        assert a is b
        assert a is not d

    def test_directed_override(self):
        c = GraphCache()
        und = c.tiled("twitter-small", tier="tiny", directed_override=False)
        dire = c.tiled("twitter-small", tier="tiny", directed_override=True)
        assert und.info.symmetric
        assert not dire.info.symmetric

    def test_clear(self):
        c = GraphCache()
        a = c.edge_list("kron-small-16", tier="tiny")
        c.clear()
        assert c.edge_list("kron-small-16", tier="tiny") is not a

    def test_global_cache_singleton(self):
        assert graphs() is graphs()


class TestScaledConfigs:
    def test_semi_external_regime(self):
        c = GraphCache()
        tg = c.tiled("kron-small-16", tier="tiny")
        cfg = scaled_config(tg, memory_fraction=0.125)
        # Memory below the traditional graph size but above two segments.
        assert cfg.memory_bytes < tg.info.n_input_edges * 8
        assert cfg.memory_bytes >= 2 * cfg.segment_bytes

    def test_policy_forwarded(self):
        c = GraphCache()
        tg = c.tiled("kron-small-16", tier="tiny")
        cfg = scaled_config(tg, cache_policy=CachePolicy.BASE)
        assert cfg.cache_policy is CachePolicy.BASE

    def test_baseline_matches_engine_budget(self):
        c = GraphCache()
        tg = c.tiled("kron-small-16", tier="tiny")
        e = scaled_config(tg, memory_fraction=0.25)
        b = scaled_baseline_config(tg, memory_fraction=0.25)
        assert e.memory_bytes == b.memory_bytes
        assert e.segment_bytes == b.segment_bytes

    def test_scaled_device_latency(self):
        c = GraphCache()
        tg = c.tiled("kron-small-16", tier="tiny")
        cfg = scaled_config(tg)
        assert cfg.device_profile.latency < 1e-5
