"""Unit tests for the heavy-tailed social-graph generator."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.format.tiles import TiledGraph
from repro.graphgen.powerlaw import powerlaw_directed, zipf_ranks


class TestZipfRanks:
    def test_range(self):
        rng = np.random.default_rng(1)
        r = zipf_ranks(10_000, 1.5, 1000, rng)
        assert r.min() >= 0
        assert r.max() < 1000

    def test_head_heavy(self):
        rng = np.random.default_rng(1)
        r = zipf_ranks(100_000, 1.5, 10_000, rng)
        # Rank 0 should collect far more mass than the median rank.
        counts = np.bincount(r, minlength=10_000)
        assert counts[0] > 100 * max(1, counts[5000])

    def test_larger_exponent_more_skew(self):
        rng1 = np.random.default_rng(2)
        rng2 = np.random.default_rng(2)
        mild = zipf_ranks(50_000, 1.2, 1000, rng1)
        steep = zipf_ranks(50_000, 2.0, 1000, rng2)
        assert np.bincount(steep)[0] > np.bincount(mild)[0]

    def test_validation(self):
        rng = np.random.default_rng(1)
        with pytest.raises(DatasetError):
            zipf_ranks(10, 1.0, 100, rng)
        with pytest.raises(DatasetError):
            zipf_ranks(10, 1.5, 0, rng)


class TestPowerlawDirected:
    def test_shape(self):
        el = powerlaw_directed(1000, 5000, seed=3)
        assert el.n_vertices == 1000
        assert el.n_edges == 5000
        assert el.directed

    def test_in_degree_hubs(self):
        el = powerlaw_directed(5000, 100_000, s_in=1.5, seed=3)
        ind = el.in_degrees()
        assert ind.max() > 50 * max(1.0, float(np.median(ind)))

    def test_cluster_dst_concentrates_hubs_at_low_ids(self):
        el = powerlaw_directed(5000, 50_000, seed=3, cluster_dst=True)
        ind = el.in_degrees()
        assert int(ind.argmax()) < 50

    def test_scattered_variant(self):
        el = powerlaw_directed(5000, 50_000, seed=3, cluster_dst=False)
        ind = el.in_degrees()
        # Hubs permuted away from the low-ID corner with high probability.
        top = np.argsort(ind)[-10:]
        assert (top > 500).any()

    def test_tile_skew_matches_figure5_shape(self):
        # The Figure 5 properties: a large empty-tile fraction and a
        # dominant largest tile.
        el = powerlaw_directed(1 << 14, 250_000, s_in=1.5, s_out=1.15, seed=7)
        tg = TiledGraph.from_edge_list(el.deduped(), tile_bits=8, group_q=4)
        counts = tg.tile_edge_counts()
        assert float((counts == 0).mean()) > 0.15
        assert counts.max() > 100 * max(1.0, float(np.median(counts[counts > 0])))

    def test_validation(self):
        with pytest.raises(DatasetError):
            powerlaw_directed(0, 10)
