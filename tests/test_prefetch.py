"""Prefetch-pipeline equivalence and hygiene (the real §VI-B overlap).

The contract: with ``prefetch_depth >= 1`` a background worker fetches and
decodes slide batches ahead of compute, but batches still *commit* in plan
order on the engine thread — so every algorithm's results, edge counts,
simulated timeline, and SCR cache stats are identical at any depth to the
strictly serial ``prefetch_depth=0`` baseline.  And whatever happens
mid-run (algorithm exceptions included), no prefetch thread survives the
iteration.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.algorithms.bfs import BFS
from repro.algorithms.cc import ConnectedComponents
from repro.algorithms.kcore import KCore
from repro.algorithms.pagerank import PageRank
from repro.algorithms.spmv import SpMV
from repro.engine.config import EngineConfig
from repro.engine.gstore import GStoreEngine
from repro.format.tiles import TiledGraph
from repro.graphgen.rmat import rmat
from repro.runtime.threads import PREFETCH_THREAD_NAME, WORKER_THREAD_PREFIX

ALGOS = {
    "bfs": lambda: BFS(root=0),
    "pagerank": lambda: PageRank(max_iterations=15, tolerance=1e-10),
    "spmv": lambda: SpMV(iterations=3),
    "cc": lambda: ConnectedComponents(),
    "kcore": lambda: KCore(k=4),
}

DEPTHS = [0, 1, 4]


@pytest.fixture(scope="module")
def graph() -> TiledGraph:
    el = rmat(9, edge_factor=8, seed=77)
    return TiledGraph.from_edge_list(el, tile_bits=6, group_q=4)


def _run(tg, factory, depth, fused=True, workers=1):
    # Tiny budget: several slide batches per iteration plus cache pressure,
    # so rewind, mid-iteration evictions, and multi-batch prefetch all run.
    # shards is pinned to 1 module-wide: this file asserts the prefetch
    # *pipeline*'s internals, which shard-parallel execution bypasses
    # (shard/prefetch composition is covered by tests/test_backends.py).
    cfg = EngineConfig(
        memory_bytes=24 * 1024,
        segment_bytes=4 * 1024,
        fused=fused,
        workers=workers,
        prefetch_depth=depth,
        shards=1,
    )
    with GStoreEngine(tg, cfg) as engine:
        algo = factory()
        stats = engine.run(algo)
    return algo.result().copy(), stats


def _lingering(prefix: str) -> "list[str]":
    return [t.name for t in threading.enumerate() if t.name.startswith(prefix)]


@pytest.mark.parametrize("name", sorted(ALGOS))
def test_depth_equivalence(graph, name):
    """Results, edge counts, sim timeline, and SCR stats are identical at
    every prefetch depth."""
    factory = ALGOS[name]
    ref_result, ref_stats = _run(graph, factory, depth=0)
    for depth in DEPTHS[1:]:
        result, stats = _run(graph, factory, depth=depth)
        assert np.array_equal(result, ref_result), (name, depth)
        assert stats.edges_processed == ref_stats.edges_processed, (name, depth)
        assert len(stats.iterations) == len(ref_stats.iterations), (name, depth)
        assert stats.sim_elapsed == pytest.approx(ref_stats.sim_elapsed)
        assert stats.io_time == pytest.approx(ref_stats.io_time)
        assert stats.bytes_read == ref_stats.bytes_read, (name, depth)
        assert stats.tiles_fetched == ref_stats.tiles_fetched, (name, depth)
        # SCR cache behaviour is schedule-dependent; identical schedules
        # must produce identical cache stats.
        assert stats.extra["scr"] == ref_stats.extra["scr"], (name, depth)


def test_depth_equivalence_per_tile(graph):
    """The per-tile (non-fused) reference loop prefetches identically too."""
    ref_result, ref_stats = _run(graph, ALGOS["bfs"], depth=0, fused=False)
    result, stats = _run(graph, ALGOS["bfs"], depth=2, fused=False)
    assert np.array_equal(result, ref_result)
    assert stats.edges_processed == ref_stats.edges_processed
    assert stats.extra["scr"] == ref_stats.extra["scr"]


def test_prefetched_batches_recorded(graph):
    """The wall-overlap accounting distinguishes serial from prefetched."""
    _, serial = _run(graph, ALGOS["pagerank"], depth=0)
    _, overlapped = _run(graph, ALGOS["pagerank"], depth=2)
    sw, ow = serial.extra["pipeline_wall"], overlapped.extra["pipeline_wall"]
    assert sw["batches"] > 0 and sw["prefetched"] == 0
    assert ow["prefetched"] == ow["batches"] > 0
    # The serial baseline stalls for every fetch by definition.
    assert sw["io_stall"] == pytest.approx(sw["io_busy"])
    assert serial.wall_io_stall_fraction() is not None


def test_execution_extra_records_pipeline(graph):
    _, stats = _run(graph, ALGOS["bfs"], depth=3, workers="auto")
    ex = stats.extra["execution"]
    assert ex["prefetch_depth"] == 3
    assert ex["workers"] == "auto"
    assert isinstance(ex["workers_resolved"], int) and ex["workers_resolved"] >= 1


class _Exploder(PageRank):
    """PageRank that blows up mid-run, after the pipeline has started."""

    def __init__(self, after_batches: int = 3):
        super().__init__(max_iterations=10, tolerance=0.0)
        self._batches = 0
        self._after = after_batches

    def batch_partial(self, views):
        self._batches += 1
        if self._batches > self._after:
            raise RuntimeError("kernel exploded mid-iteration")
        return super().batch_partial(views)

    def process_batch(self, views) -> int:
        self._batches += 1
        if self._batches > self._after:
            raise RuntimeError("kernel exploded mid-iteration")
        return super().process_batch(views)


@pytest.mark.parametrize("depth", [1, 4])
def test_algorithm_exception_shuts_prefetcher_down(graph, depth):
    """A mid-iteration kernel exception must not leak the prefetch thread
    (or pool workers, once the engine is closed)."""
    cfg = EngineConfig(
        memory_bytes=24 * 1024,
        segment_bytes=4 * 1024,
        prefetch_depth=depth,
        shards=1,
    )
    engine = GStoreEngine(graph, cfg)
    with pytest.raises(RuntimeError, match="exploded"):
        engine.run(_Exploder())
    assert _lingering(PREFETCH_THREAD_NAME) == []
    engine.close()
    assert _lingering(WORKER_THREAD_PREFIX) == []


def test_io_error_propagates_and_cleans_up(graph):
    """A store-read failure inside a prefetch job surfaces on the engine
    thread and still tears the pipeline down."""
    cfg = EngineConfig(
        memory_bytes=24 * 1024, segment_bytes=4 * 1024, prefetch_depth=2,
        shards=1,
    )
    engine = GStoreEngine(graph, cfg)
    original = engine.store.read

    def broken(offset, size):
        raise OSError("injected read failure")

    engine.store.read = broken
    with pytest.raises(OSError, match="injected"):
        engine.run(BFS(root=0))
    engine.store.read = original
    assert _lingering(PREFETCH_THREAD_NAME) == []
    engine.close()


def test_realize_io_matches_unrealized_results(graph):
    """Device-paced mode only changes wall time, never results or the
    simulated timeline."""
    ref_result, ref_stats = _run(graph, ALGOS["bfs"], depth=0)
    cfg = EngineConfig(
        memory_bytes=24 * 1024,
        segment_bytes=4 * 1024,
        prefetch_depth=2,
        realize_io=True,
        shards=1,
    )
    with GStoreEngine(graph, cfg) as engine:
        algo = BFS(root=0)
        stats = engine.run(algo)
    assert np.array_equal(algo.result(), ref_result)
    assert stats.sim_elapsed == pytest.approx(ref_stats.sim_elapsed)
    # The run really slept its I/O: wall time covers the simulated io time.
    assert stats.wall_seconds > 0
