"""Unit tests for the dynamic row scheduler, the persistent worker pool,
the bounded prefetcher, and the process backend's shared-memory plane."""

import os
import signal
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.threads import (
    DEFAULT_MAX_SHARDS,
    LIVE_SHM_SEGMENTS,
    PREFETCH_THREAD_NAME,
    KernelTask,
    Prefetcher,
    ProcessPool,
    ProcessPoolError,
    ShmArena,
    WorkerPool,
    attach_view,
    available_cpus,
    chunk_by_edges,
    default_backend,
    default_workers,
    dynamic_row_map,
    execution_fingerprint,
    resolve_backend,
    resolve_workers,
    row_run_shards,
)


class TestDynamicRowMap:
    def test_preserves_order(self):
        out = dynamic_row_map(lambda x: x * 2, range(100), workers=4)
        assert out == [x * 2 for x in range(100)]

    def test_serial_path(self):
        out = dynamic_row_map(lambda x: x + 1, [1, 2, 3], workers=1)
        assert out == [2, 3, 4]

    def test_single_item(self):
        assert dynamic_row_map(str, [7], workers=8) == ["7"]

    def test_empty(self):
        assert dynamic_row_map(str, [], workers=4) == []

    def test_skewed_work(self):
        # Mimics skewed tile rows: some items much heavier than others.
        def work(n):
            return sum(range(n))

        items = [10, 10_000, 10, 10_000, 10]
        assert dynamic_row_map(work, items, workers=3) == [work(n) for n in items]


class TestDefaultWorkers:
    def test_env_override(self):
        old = os.environ.get("REPRO_WORKERS")
        os.environ["REPRO_WORKERS"] = "3"
        try:
            assert default_workers() == 3
        finally:
            if old is None:
                del os.environ["REPRO_WORKERS"]
            else:
                os.environ["REPRO_WORKERS"] = old

    def test_positive(self):
        assert default_workers() >= 1


class TestResolveWorkers:
    def test_int_passthrough(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(1) == 1

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            resolve_workers(0)
        with pytest.raises(ValueError):
            resolve_workers("many")

    def test_auto_clamps_to_cores(self):
        cores = os.cpu_count() or 1
        old = os.environ.get("REPRO_WORKERS")
        os.environ["REPRO_WORKERS"] = str(cores * 8)  # oversubscribed env
        try:
            assert resolve_workers("auto") == cores
        finally:
            if old is None:
                del os.environ["REPRO_WORKERS"]
            else:
                os.environ["REPRO_WORKERS"] = old


class TestWorkerPool:
    def test_lazy_creation(self):
        pool = WorkerPool(workers=2)
        assert not pool.started
        assert pool.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
        assert pool.started
        pool.shutdown()

    def test_reused_across_calls(self):
        with WorkerPool(workers=2) as pool:
            first = pool.executor
            pool.map(str, range(10))
            assert pool.executor is first  # no per-batch churn

    def test_shutdown_idempotent_and_final(self):
        pool = WorkerPool(workers=2)
        pool.submit(lambda: None).result()
        pool.shutdown()
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.executor  # noqa: B018

    def test_dynamic_row_map_uses_pool(self):
        with WorkerPool(workers=4) as pool:
            out = dynamic_row_map(lambda x: x * 3, range(50), pool=pool)
            assert out == [x * 3 for x in range(50)]
            assert pool.started


class TestPrefetcher:
    def test_in_order_delivery(self):
        jobs = [lambda i=i: i * i for i in range(20)]
        with Prefetcher(jobs, depth=3) as pf:
            assert [pf.get() for _ in range(20)] == [i * i for i in range(20)]

    def test_bounded_depth(self):
        """The producer never runs more than depth jobs ahead of consumption."""
        started: "list[int]" = []
        gate = threading.Event()

        def job(i):
            started.append(i)
            return i

        pf = Prefetcher([lambda i=i: job(i) for i in range(10)], depth=2)
        try:
            deadline = time.time() + 2.0
            while len(started) < 2 and time.time() < deadline:
                time.sleep(0.005)
            time.sleep(0.05)  # give an over-eager producer time to overrun
            assert len(started) <= 2  # nothing consumed yet -> at most depth
            assert pf.get() == 0
            deadline = time.time() + 2.0
            while len(started) < 3 and time.time() < deadline:
                time.sleep(0.005)
            assert len(started) <= 3
        finally:
            gate.set()
            pf.close()

    def test_job_exception_surfaces_on_get(self):
        def boom():
            raise ValueError("job failed")

        pf = Prefetcher([lambda: 1, boom, lambda: 3], depth=2)
        assert pf.get() == 1
        with pytest.raises(ValueError, match="job failed"):
            pf.get()
        assert not any(
            t.name.startswith(PREFETCH_THREAD_NAME) for t in threading.enumerate()
        )

    def test_close_midway_leaves_no_thread(self):
        pf = Prefetcher([lambda i=i: i for i in range(100)], depth=1)
        assert pf.get() == 0
        pf.close()
        assert not any(
            t.name.startswith(PREFETCH_THREAD_NAME) for t in threading.enumerate()
        )

    def test_close_while_blocked_on_full_queue(self):
        """close() must unstick a producer waiting for a free slot."""
        slow = [lambda i=i: i for i in range(50)]
        pf = Prefetcher(slow, depth=1)
        time.sleep(0.05)  # producer fills its single slot and blocks
        pf.close()
        assert not any(
            t.name.startswith(PREFETCH_THREAD_NAME) for t in threading.enumerate()
        )

    def test_get_past_end_raises(self):
        pf = Prefetcher([lambda: 42], depth=1)
        assert pf.get() == 42
        with pytest.raises(IndexError):
            pf.get()
        pf.close()

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            Prefetcher([], depth=0)


# ---------------------------------------------------------------------- #
# Backend resolution and the execution fingerprint
# ---------------------------------------------------------------------- #


class TestBackendResolution:
    def test_explicit_passthrough(self):
        for b in ("serial", "thread", "process"):
            assert resolve_backend(b) == b

    def test_none_uses_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process")
        assert default_backend() == "process"
        assert resolve_backend(None) == "process"
        assert resolve_backend("auto") == "process"

    def test_default_is_thread(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend(None) == "thread"

    def test_rejects_bad_values(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_backend("gpu")
        monkeypatch.setenv("REPRO_BACKEND", "quantum")
        with pytest.raises(ValueError):
            resolve_backend(None)

    def test_available_cpus_positive(self):
        cpus = available_cpus()
        assert 1 <= cpus <= (os.cpu_count() or 1)

    def test_fingerprint_fields(self):
        fp = execution_fingerprint(workers=2, backend="process")
        assert fp["workers_resolved"] == 2
        assert fp["backend_resolved"] == "process"
        assert fp["cpus_available"] == available_cpus()
        assert fp["cpus_logical"] == (os.cpu_count() or 1)


# ---------------------------------------------------------------------- #
# Shard-structure invariants (property-based)
# ---------------------------------------------------------------------- #


class _FakeView:
    """Minimal stand-in for TileView: a row index and an edge count."""

    __slots__ = ("i", "lsrc")

    def __init__(self, i: int, n_edges: int):
        self.i = i
        self.lsrc = np.empty(n_edges, dtype=np.uint16)


@st.composite
def view_batches(draw):
    spec = draw(
        st.lists(
            st.tuples(st.integers(0, 6), st.integers(0, 500)),
            min_size=0,
            max_size=40,
        )
    )
    return [_FakeView(i, n) for i, n in spec]


class TestShardInvariants:
    """The properties the parallel backends' determinism rests on: shards
    concatenate back to the original batch order, respect the shard
    ceiling, and are edge-balanced — independent of any worker count."""

    @given(views=view_batches(), max_shards=st.integers(1, 16))
    @settings(max_examples=100, deadline=None)
    def test_chunk_by_edges(self, views, max_shards):
        shards = chunk_by_edges(views, max_shards=max_shards)
        # Concatenation preserves the exact object sequence.
        flat = [tv for shard in shards for tv in shard]
        assert flat == views
        assert all(shard for shard in shards)
        assert len(shards) <= max(1, max_shards)
        if len(views) > 1 and max_shards > 1:
            total = sum(tv.lsrc.shape[0] for tv in views)
            target = max(1, -(-total // max_shards))
            # Every shard closed early reached the balance target.
            for shard in shards[:-1]:
                assert sum(tv.lsrc.shape[0] for tv in shard) >= target

    @given(views=view_batches())
    @settings(max_examples=100, deadline=None)
    def test_row_run_shards(self, views):
        shards = row_run_shards(views)
        flat = [tv for shard in shards for tv in shard]
        assert flat == views
        for shard in shards:
            assert shard
            assert len({tv.i for tv in shard}) == 1  # one row per run
        for a, b in zip(shards, shards[1:]):
            assert a[0].i != b[0].i  # maximal runs

    @given(views=view_batches(), max_shards=st.integers(1, 16))
    @settings(max_examples=50, deadline=None)
    def test_chunking_is_worker_independent(self, views, max_shards):
        """Identical inputs give identical structure — the split never
        consults the environment, so any worker count sees the same
        shards (and hence the same partial-application order)."""
        a = chunk_by_edges(views, max_shards=max_shards)
        b = chunk_by_edges(list(views), max_shards=max_shards)
        assert [[id(v) for v in s] for s in a] == [
            [id(v) for v in s] for s in b
        ]

    def test_default_ceiling(self):
        views = [_FakeView(0, 10) for _ in range(100)]
        assert len(chunk_by_edges(views)) <= DEFAULT_MAX_SHARDS


# ---------------------------------------------------------------------- #
# Shared-memory arena
# ---------------------------------------------------------------------- #


class TestShmArena:
    def test_put_attach_roundtrip(self):
        rng = np.random.default_rng(3)
        arrays = [
            rng.integers(0, 2**32, 1000).astype(np.uint32),
            rng.standard_normal(501),
            np.array([True, False, True]),
        ]
        with ShmArena() as arena:
            arena.reserve(ShmArena.layout_bytes(arrays))
            descs = [arena.put(a) for a in arrays]
            cache: dict = {}
            for arr, desc in zip(arrays, descs):
                assert desc.offset % ShmArena.ALIGN == 0
                assert desc.nbytes == arr.nbytes
                view = attach_view(desc, cache)
                np.testing.assert_array_equal(view, arr)
                assert not view.flags.writeable
            # Same-process attach maps the same physical bytes.
            assert len(cache) == 1
            del view
            for seg in cache.values():
                seg.close()

    def test_overflow_raises(self):
        with ShmArena() as arena:
            arena.reserve(64)
            big = np.zeros(arena.capacity + 1, dtype=np.uint8)
            with pytest.raises(RuntimeError, match="overflow"):
                arena.put(big)

    def test_reserve_resets_between_batches(self):
        with ShmArena() as arena:
            arena.reserve(4096)
            d1 = arena.put(np.arange(16))
            arena.reserve(4096)  # next batch: bump pointer rewinds
            d2 = arena.put(np.arange(16))
            assert d1.offset == d2.offset

    def test_growth_replaces_segment_and_leaks_nothing(self):
        arena = ShmArena(capacity=1024)
        try:
            arena.reserve(512)
            first = arena.name
            assert first in LIVE_SHM_SEGMENTS
            arena.reserve(arena.capacity * 4)
            second = arena.name
            assert second != first
            assert first not in LIVE_SHM_SEGMENTS  # old gen unlinked
            assert second in LIVE_SHM_SEGMENTS
        finally:
            arena.close()
        assert second not in LIVE_SHM_SEGMENTS

    def test_close_idempotent_and_final(self):
        arena = ShmArena()
        arena.reserve(128)
        name = arena.name
        arena.close()
        arena.close()
        assert name not in LIVE_SHM_SEGMENTS
        with pytest.raises(RuntimeError):
            arena.ensure(128)

    def test_put_before_reserve_raises(self):
        with ShmArena() as arena:
            with pytest.raises(RuntimeError, match="reserve"):
                arena.put(np.arange(4))


# ---------------------------------------------------------------------- #
# Process pool (spawn-heavy: kept to a few tests, small worker counts)
# ---------------------------------------------------------------------- #


def _bfs_tasks(arena: ShmArena, shard_sizes) -> "tuple[list, list]":
    """KernelTasks running the real BFS kernel, plus expected partials."""
    from repro.algorithms.bfs import BFS
    from repro.types import INF_DEPTH

    rng = np.random.default_rng(11)
    n = 64
    depth = np.full(n, INF_DEPTH, dtype=np.uint32)
    depth[:8] = 0
    params = {"level": 0, "symmetric": False}
    shards = [
        (
            rng.integers(0, n, size).astype(np.uint32),
            rng.integers(0, n, size).astype(np.uint32),
        )
        for size in shard_sizes
    ]
    arrays = [depth] + [a for pair in shards for a in pair]
    arena.reserve(ShmArena.layout_bytes(arrays))
    state_desc = {"depth": arena.put(depth)}
    tasks = [
        KernelTask(
            module="repro.algorithms.bfs",
            qualname="BFS",
            params=params,
            state=state_desc,
            gsrc=arena.put(gs),
            gdst=arena.put(gd),
        )
        for gs, gd in shards
    ]
    expected = [
        BFS.kernel_partial({"depth": depth}, params, gs, gd)
        for gs, gd in shards
    ]
    return tasks, expected


class TestProcessPool:
    def test_runs_kernels_in_task_order(self):
        with ShmArena() as arena, ProcessPool(workers=2) as pool:
            tasks, expected = _bfs_tasks(arena, [200, 17, 333, 1])
            results = pool.run_tasks(tasks)
            assert len(results) == len(tasks)
            for (got, meta), want in zip(results, expected):
                np.testing.assert_array_equal(got[0], want[0])
                assert got[1] is None and want[1] is None
                assert got[2] == want[2]
                pid, t0, t1 = meta
                assert t1 >= t0
            # Reuse: a second round on the same (warm) pool.
            tasks2, expected2 = _bfs_tasks(arena, [50, 50])
            for (got, _), want in zip(pool.run_tasks(tasks2), expected2):
                np.testing.assert_array_equal(got[0], want[0])
        assert not LIVE_SHM_SEGMENTS

    def test_kernel_error_embeds_traceback(self):
        with ShmArena() as arena, ProcessPool(workers=1) as pool:
            tasks, _ = _bfs_tasks(arena, [10])
            bad = KernelTask(
                module="repro.algorithms.bfs",
                qualname="NoSuchAlgorithm",
                params={},
                state={},
                gsrc=tasks[0].gsrc,
                gdst=tasks[0].gdst,
            )
            with pytest.raises(ProcessPoolError, match="AttributeError"):
                pool.run_tasks([bad])
            assert pool.broken
        assert not LIVE_SHM_SEGMENTS

    def test_worker_crash_detected_and_nothing_leaks(self):
        """SIGKILLing a worker mid-wait surfaces ProcessPoolError, and
        shutdown + arena close leave no process and no shm segment."""
        arena = ShmArena()
        pool = ProcessPool(workers=1)
        try:
            pool.start()
            tasks, _ = _bfs_tasks(arena, [10])
            os.kill(pool.processes[0].pid, signal.SIGKILL)
            with pytest.raises(ProcessPoolError, match="died"):
                pool.run_tasks(tasks)
            assert pool.broken
        finally:
            pool.shutdown()
            arena.close()
        assert not any(p.is_alive() for p in pool.processes)
        assert not LIVE_SHM_SEGMENTS

    def test_shutdown_idempotent(self):
        pool = ProcessPool(workers=1)
        pool.shutdown()  # never started
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.run_tasks([])

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ProcessPool(workers=0)
