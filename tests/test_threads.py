"""Unit tests for the dynamic row scheduler."""

import os

from repro.runtime.threads import default_workers, dynamic_row_map


class TestDynamicRowMap:
    def test_preserves_order(self):
        out = dynamic_row_map(lambda x: x * 2, range(100), workers=4)
        assert out == [x * 2 for x in range(100)]

    def test_serial_path(self):
        out = dynamic_row_map(lambda x: x + 1, [1, 2, 3], workers=1)
        assert out == [2, 3, 4]

    def test_single_item(self):
        assert dynamic_row_map(str, [7], workers=8) == ["7"]

    def test_empty(self):
        assert dynamic_row_map(str, [], workers=4) == []

    def test_skewed_work(self):
        # Mimics skewed tile rows: some items much heavier than others.
        def work(n):
            return sum(range(n))

        items = [10, 10_000, 10, 10_000, 10]
        assert dynamic_row_map(work, items, workers=3) == [work(n) for n in items]


class TestDefaultWorkers:
    def test_env_override(self):
        old = os.environ.get("REPRO_WORKERS")
        os.environ["REPRO_WORKERS"] = "3"
        try:
            assert default_workers() == 3
        finally:
            if old is None:
                del os.environ["REPRO_WORKERS"]
            else:
                os.environ["REPRO_WORKERS"] = old

    def test_positive(self):
        assert default_workers() >= 1
