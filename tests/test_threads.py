"""Unit tests for the dynamic row scheduler, the persistent worker pool,
and the bounded prefetcher."""

import os
import threading
import time

import pytest

from repro.runtime.threads import (
    PREFETCH_THREAD_NAME,
    Prefetcher,
    WorkerPool,
    default_workers,
    dynamic_row_map,
    resolve_workers,
)


class TestDynamicRowMap:
    def test_preserves_order(self):
        out = dynamic_row_map(lambda x: x * 2, range(100), workers=4)
        assert out == [x * 2 for x in range(100)]

    def test_serial_path(self):
        out = dynamic_row_map(lambda x: x + 1, [1, 2, 3], workers=1)
        assert out == [2, 3, 4]

    def test_single_item(self):
        assert dynamic_row_map(str, [7], workers=8) == ["7"]

    def test_empty(self):
        assert dynamic_row_map(str, [], workers=4) == []

    def test_skewed_work(self):
        # Mimics skewed tile rows: some items much heavier than others.
        def work(n):
            return sum(range(n))

        items = [10, 10_000, 10, 10_000, 10]
        assert dynamic_row_map(work, items, workers=3) == [work(n) for n in items]


class TestDefaultWorkers:
    def test_env_override(self):
        old = os.environ.get("REPRO_WORKERS")
        os.environ["REPRO_WORKERS"] = "3"
        try:
            assert default_workers() == 3
        finally:
            if old is None:
                del os.environ["REPRO_WORKERS"]
            else:
                os.environ["REPRO_WORKERS"] = old

    def test_positive(self):
        assert default_workers() >= 1


class TestResolveWorkers:
    def test_int_passthrough(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(1) == 1

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            resolve_workers(0)
        with pytest.raises(ValueError):
            resolve_workers("many")

    def test_auto_clamps_to_cores(self):
        cores = os.cpu_count() or 1
        old = os.environ.get("REPRO_WORKERS")
        os.environ["REPRO_WORKERS"] = str(cores * 8)  # oversubscribed env
        try:
            assert resolve_workers("auto") == cores
        finally:
            if old is None:
                del os.environ["REPRO_WORKERS"]
            else:
                os.environ["REPRO_WORKERS"] = old


class TestWorkerPool:
    def test_lazy_creation(self):
        pool = WorkerPool(workers=2)
        assert not pool.started
        assert pool.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
        assert pool.started
        pool.shutdown()

    def test_reused_across_calls(self):
        with WorkerPool(workers=2) as pool:
            first = pool.executor
            pool.map(str, range(10))
            assert pool.executor is first  # no per-batch churn

    def test_shutdown_idempotent_and_final(self):
        pool = WorkerPool(workers=2)
        pool.submit(lambda: None).result()
        pool.shutdown()
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.executor  # noqa: B018

    def test_dynamic_row_map_uses_pool(self):
        with WorkerPool(workers=4) as pool:
            out = dynamic_row_map(lambda x: x * 3, range(50), pool=pool)
            assert out == [x * 3 for x in range(50)]
            assert pool.started


class TestPrefetcher:
    def test_in_order_delivery(self):
        jobs = [lambda i=i: i * i for i in range(20)]
        with Prefetcher(jobs, depth=3) as pf:
            assert [pf.get() for _ in range(20)] == [i * i for i in range(20)]

    def test_bounded_depth(self):
        """The producer never runs more than depth jobs ahead of consumption."""
        started: "list[int]" = []
        gate = threading.Event()

        def job(i):
            started.append(i)
            return i

        pf = Prefetcher([lambda i=i: job(i) for i in range(10)], depth=2)
        try:
            deadline = time.time() + 2.0
            while len(started) < 2 and time.time() < deadline:
                time.sleep(0.005)
            time.sleep(0.05)  # give an over-eager producer time to overrun
            assert len(started) <= 2  # nothing consumed yet -> at most depth
            assert pf.get() == 0
            deadline = time.time() + 2.0
            while len(started) < 3 and time.time() < deadline:
                time.sleep(0.005)
            assert len(started) <= 3
        finally:
            gate.set()
            pf.close()

    def test_job_exception_surfaces_on_get(self):
        def boom():
            raise ValueError("job failed")

        pf = Prefetcher([lambda: 1, boom, lambda: 3], depth=2)
        assert pf.get() == 1
        with pytest.raises(ValueError, match="job failed"):
            pf.get()
        assert not any(
            t.name.startswith(PREFETCH_THREAD_NAME) for t in threading.enumerate()
        )

    def test_close_midway_leaves_no_thread(self):
        pf = Prefetcher([lambda i=i: i for i in range(100)], depth=1)
        assert pf.get() == 0
        pf.close()
        assert not any(
            t.name.startswith(PREFETCH_THREAD_NAME) for t in threading.enumerate()
        )

    def test_close_while_blocked_on_full_queue(self):
        """close() must unstick a producer waiting for a free slot."""
        slow = [lambda i=i: i for i in range(50)]
        pf = Prefetcher(slow, depth=1)
        time.sleep(0.05)  # producer fills its single slot and blocks
        pf.close()
        assert not any(
            t.name.startswith(PREFETCH_THREAD_NAME) for t in threading.enumerate()
        )

    def test_get_past_end_raises(self):
        pf = Prefetcher([lambda: 42], depth=1)
        assert pf.get() == 42
        with pytest.raises(IndexError):
            pf.get()
        pf.close()

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            Prefetcher([], depth=0)
