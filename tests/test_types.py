"""Unit tests for dtype selection and the paper's byte-size conventions."""

import numpy as np
import pytest

from repro.types import edge_tuple_bytes, local_dtype, vertex_bytes_needed


class TestLocalDtype:
    def test_paper_default_is_two_bytes(self):
        # §IV-B: "we allocate two bytes to represent each vertex".
        assert local_dtype(16) == np.dtype(np.uint16)

    def test_byte_boundaries(self):
        assert local_dtype(8) == np.dtype(np.uint8)
        assert local_dtype(9) == np.dtype(np.uint16)
        assert local_dtype(17) == np.dtype(np.uint32)
        assert local_dtype(32) == np.dtype(np.uint32)

    def test_invalid(self):
        with pytest.raises(ValueError):
            local_dtype(0)
        with pytest.raises(ValueError):
            local_dtype(33)


class TestEdgeTupleBytes:
    def test_paper_default_is_four_bytes(self):
        # §IV-B: "four bytes for an edge tuple".
        assert edge_tuple_bytes(16) == 4

    def test_small_tiles(self):
        assert edge_tuple_bytes(8) == 2

    def test_wide_tiles(self):
        assert edge_tuple_bytes(20) == 8


class TestVertexBytesNeeded:
    def test_below_2_32(self):
        assert vertex_bytes_needed(2**28) == 4

    def test_at_2_32(self):
        assert vertex_bytes_needed(2**32) == 4

    def test_above_2_32(self):
        # Kron-33-16: "a vertex ID needs 8 bytes of storage".
        assert vertex_bytes_needed(2**33) == 8

    def test_invalid(self):
        with pytest.raises(ValueError):
            vertex_bytes_needed(0)
