"""Unit tests for human-readable formatting."""

from repro.util.humanize import fmt_bytes, fmt_count, fmt_time


class TestFmtBytes:
    def test_bytes(self):
        assert fmt_bytes(512) == "512B"

    def test_kilobytes(self):
        assert fmt_bytes(2048) == "2.00KB"

    def test_gigabytes(self):
        assert fmt_bytes(7.31 * 2**30).startswith("7.31")

    def test_terabytes(self):
        assert fmt_bytes(4 * 2**40) == "4.00TB"


class TestFmtTime:
    def test_microseconds(self):
        assert fmt_time(5e-6) == "5.0us"

    def test_milliseconds(self):
        assert fmt_time(0.25) == "250.0ms"

    def test_seconds(self):
        assert fmt_time(42.5) == "42.50s"

    def test_minutes(self):
        assert fmt_time(2548.5) == "42m28s"  # the paper's trillion-edge BFS

    def test_negative(self):
        assert fmt_time(-1.0) == "-1.00s"


class TestFmtCount:
    def test_plain(self):
        assert fmt_count(999) == "999"

    def test_millions(self):
        assert fmt_count(36_000_000) == "36.00M"

    def test_trillions(self):
        assert fmt_count(1e12) == "1.00T"
