"""Property-based tests: storage substrate invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.llc import SetAssocCache
from repro.cache.pagecache import LRUPageCache
from repro.storage.device import DeviceProfile, SimulatedSSD
from repro.storage.raid import Raid0Array, stripe_split


class TestStripeSplitProperties:
    @given(
        offset=st.integers(0, 10**7),
        size=st.integers(0, 10**6),
        stripe=st.sampled_from([4096, 65536, 1 << 20]),
        n_dev=st.integers(1, 8),
    )
    @settings(max_examples=100, deadline=None)
    def test_bytes_conserved(self, offset, size, stripe, n_dev):
        per_dev = stripe_split(offset, size, stripe, n_dev)
        assert sum(sum(x) for x in per_dev) == size

    @given(
        size=st.integers(1, 10**6),
        stripe=st.sampled_from([4096, 65536]),
        n_dev=st.integers(2, 8),
    )
    @settings(max_examples=50, deadline=None)
    def test_balanced_for_aligned_reads(self, size, stripe, n_dev):
        per_dev = stripe_split(0, size, stripe, n_dev)
        totals = [sum(x) for x in per_dev]
        assert max(totals) - min(totals) <= stripe


class TestDeviceProperties:
    @given(
        sizes=st.lists(st.integers(0, 10**6), min_size=1, max_size=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_sync_never_faster_than_batched(self, sizes):
        a = SimulatedSSD(DeviceProfile())
        b = SimulatedSSD(DeviceProfile())
        assert b.read_sync_time(list(sizes)) >= a.read_batch_time(list(sizes))

    @given(sizes=st.lists(st.integers(0, 10**6), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_time_monotone_in_bytes(self, sizes):
        a = SimulatedSSD(DeviceProfile())
        b = SimulatedSSD(DeviceProfile())
        t_small = a.read_batch_time(list(sizes))
        t_big = b.read_batch_time([s + 1000 for s in sizes])
        assert t_big >= t_small


class TestRaidProperties:
    @given(
        extents=st.lists(
            st.tuples(st.integers(0, 10**6), st.integers(0, 10**5)),
            min_size=1,
            max_size=20,
        ),
        n_dev=st.integers(1, 8),
    )
    @settings(max_examples=50, deadline=None)
    def test_more_devices_never_slower(self, extents, n_dev):
        t_one = Raid0Array(n_devices=1).read_batch_time(list(extents))
        t_n = Raid0Array(n_devices=n_dev).read_batch_time(list(extents))
        assert t_n <= t_one + 1e-12

    @given(
        extents=st.lists(
            st.tuples(st.integers(0, 10**6), st.integers(0, 10**5)),
            min_size=1,
            max_size=20,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_bytes_accounted(self, extents):
        arr = Raid0Array(n_devices=4)
        arr.read_batch_time(list(extents))
        assert arr.bytes_read == sum(s for _, s in extents)


class TestCacheProperties:
    @given(
        addrs=st.lists(st.integers(0, 2**20), min_size=1, max_size=300),
    )
    @settings(max_examples=50, deadline=None)
    def test_llc_hits_plus_misses_equals_ops(self, addrs):
        c = SetAssocCache(size_bytes=4096, line_bytes=64, ways=4)
        c.access(np.array(addrs))
        assert c.stats.hits + c.stats.misses == c.stats.operations == len(addrs)

    @given(
        addrs=st.lists(st.integers(0, 2**14), min_size=1, max_size=200),
    )
    @settings(max_examples=30, deadline=None)
    def test_llc_repeat_pass_never_worse(self, addrs):
        # Replaying the identical trace immediately can only improve hits
        # when the working set fits; never produce *more* misses than cold.
        trace = np.array(addrs)
        c = SetAssocCache(size_bytes=1 << 16, line_bytes=64, ways=16)
        cold = c.access(trace)
        warm = c.access(trace)
        assert warm.misses <= cold.misses

    @given(
        pages=st.lists(st.integers(0, 100), min_size=1, max_size=300),
        capacity_pages=st.integers(0, 120),
    )
    @settings(max_examples=50, deadline=None)
    def test_pagecache_resident_bounded(self, pages, capacity_pages):
        c = LRUPageCache(capacity_bytes=capacity_pages * 4096)
        c.access_pages(pages)
        assert c.resident_pages <= capacity_pages

    @given(pages=st.lists(st.integers(0, 50), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_pagecache_unbounded_capacity_all_unique_miss_once(self, pages):
        c = LRUPageCache(capacity_bytes=10**9)
        c.access_pages(pages)
        assert c.stats.misses == len(set(pages))
