"""End-to-end integration tests crossing module boundaries."""

import numpy as np
import pytest

from repro import (
    BFS,
    ConnectedComponents,
    EdgeList,
    EngineConfig,
    FlashGraphEngine,
    GStoreEngine,
    GridGraphEngine,
    PageRank,
    TiledGraph,
    XStreamEngine,
    kronecker,
)
from repro.baselines.common import BaselineConfig
from repro.memory.scr import CachePolicy


@pytest.fixture(scope="module")
def kron():
    return kronecker(11, edge_factor=8, seed=33)


@pytest.fixture(scope="module")
def kron_tiled(kron):
    return TiledGraph.from_edge_list(kron, tile_bits=7, group_q=4)


def _cfg(**kw):
    base = dict(memory_bytes=128 * 1024, segment_bytes=16 * 1024)
    base.update(kw)
    return EngineConfig(**base)


class TestFourEnginesAgree:
    """All four engines must produce identical results on the same graph."""

    def test_bfs_consensus(self, kron, kron_tiled):
        gs = BFS(root=0)
        GStoreEngine(kron_tiled, _cfg()).run(gs)
        bcfg = BaselineConfig(memory_bytes=128 * 1024, segment_bytes=16 * 1024)
        d_xs, _ = XStreamEngine(kron, bcfg).run_bfs(0)
        d_fg, _ = FlashGraphEngine(kron, bcfg).run_bfs(0)
        d_gg, _ = GridGraphEngine(kron, bcfg, n_parts=8).run_bfs(0)
        assert np.array_equal(gs.result(), d_xs)
        assert np.array_equal(gs.result(), d_fg)
        assert np.array_equal(gs.result(), d_gg)

    def test_pagerank_consensus(self, kron, kron_tiled):
        gs = PageRank(tolerance=1e-12, max_iterations=300)
        GStoreEngine(kron_tiled, _cfg()).run(gs)
        bcfg = BaselineConfig(memory_bytes=128 * 1024, segment_bytes=16 * 1024)
        r_xs, _ = XStreamEngine(kron, bcfg).run_pagerank(
            tolerance=1e-12, max_iterations=300
        )
        r_fg, _ = FlashGraphEngine(kron, bcfg).run_pagerank(
            tolerance=1e-12, max_iterations=300
        )
        assert np.allclose(gs.result(), r_xs, atol=1e-10)
        assert np.allclose(gs.result(), r_fg, atol=1e-10)

    def test_cc_consensus(self, kron, kron_tiled):
        gs = ConnectedComponents()
        GStoreEngine(kron_tiled, _cfg()).run(gs)
        bcfg = BaselineConfig(memory_bytes=128 * 1024, segment_bytes=16 * 1024)
        c_xs, _ = XStreamEngine(kron, bcfg).run_cc()
        c_gg, _ = GridGraphEngine(kron, bcfg, n_parts=8).run_cc()
        assert np.array_equal(gs.result(), c_xs)
        assert np.array_equal(gs.result(), c_gg)


class TestPersistedPipeline:
    """Generate -> convert -> save -> reload (semi-external) -> run."""

    def test_full_pipeline(self, tmp_path, kron, kron_tiled):
        d = tmp_path / "store"
        kron_tiled.save(d)
        reloaded = TiledGraph.load(d, resident=False)
        algo = BFS(root=0)
        stats = GStoreEngine(reloaded, _cfg()).run(algo)
        ref = BFS(root=0)
        GStoreEngine(kron_tiled, _cfg()).run(ref)
        assert np.array_equal(algo.result(), ref.result())
        assert stats.bytes_read > 0  # actually went through the store

    def test_edge_list_roundtrip_through_disk(self, tmp_path, kron):
        p = tmp_path / "edges.bin"
        kron.save(p)
        back = EdgeList.load(p)
        tg1 = TiledGraph.from_edge_list(kron, tile_bits=7, group_q=4)
        tg2 = TiledGraph.from_edge_list(back, tile_bits=7, group_q=4)
        assert np.array_equal(tg1.payload, tg2.payload)


class TestPolicyInvariance:
    """Results must be identical across all engine configurations."""

    @pytest.mark.parametrize("policy", [CachePolicy.SCR, CachePolicy.BASE])
    @pytest.mark.parametrize("n_ssds", [1, 4])
    def test_bfs_invariant(self, kron_tiled, policy, n_ssds):
        algo = BFS(root=0)
        GStoreEngine(
            kron_tiled, _cfg(cache_policy=policy, n_ssds=n_ssds)
        ).run(algo)
        ref = BFS(root=0)
        GStoreEngine(kron_tiled, _cfg()).run(ref)
        assert np.array_equal(algo.result(), ref.result())

    @pytest.mark.parametrize("memory_kb", [32, 64, 512])
    def test_pagerank_invariant_across_memory(self, kron_tiled, memory_kb):
        algo = PageRank(max_iterations=10, tolerance=0.0)
        GStoreEngine(
            kron_tiled,
            _cfg(memory_bytes=memory_kb * 1024, segment_bytes=8 * 1024),
        ).run(algo)
        ref = PageRank(max_iterations=10, tolerance=0.0)
        GStoreEngine(kron_tiled, _cfg()).run(ref)
        assert np.allclose(algo.result(), ref.result())


class TestAblationFormats:
    """The Figure 10 format variants must agree on results."""

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(snb=True, symmetric=True),
            dict(snb=False, symmetric=True),
            dict(snb=False, symmetric=False),
        ],
    )
    def test_variants_agree(self, kron, kwargs):
        tg = TiledGraph.from_edge_list(kron, tile_bits=7, group_q=4, **kwargs)
        algo = BFS(root=0)
        GStoreEngine(tg, _cfg()).run(algo)
        ref_tg = TiledGraph.from_edge_list(kron, tile_bits=7, group_q=4)
        ref = BFS(root=0)
        GStoreEngine(ref_tg, _cfg()).run(ref)
        assert np.array_equal(algo.result(), ref.result())

    def test_variant_sizes_ordered(self, kron):
        full = TiledGraph.from_edge_list(
            kron, tile_bits=7, group_q=4, snb=False, symmetric=False
        )
        sym = TiledGraph.from_edge_list(
            kron, tile_bits=7, group_q=4, snb=False, symmetric=True
        )
        snb = TiledGraph.from_edge_list(kron, tile_bits=7, group_q=4)
        assert full.storage_bytes() == 2 * sym.storage_bytes()
        assert sym.storage_bytes() > snb.storage_bytes()
