"""Unit tests for the set-associative LLC simulator (Figures 11/12)."""

import numpy as np
import pytest

from repro.cache.llc import SetAssocCache
from repro.errors import StorageError


def _cache(size=1024, line=64, ways=2):
    return SetAssocCache(size_bytes=size, line_bytes=line, ways=ways)


class TestGeometry:
    def test_set_count(self):
        c = _cache(size=1024, line=64, ways=2)
        assert c.n_sets == 8

    def test_invalid_geometry(self):
        with pytest.raises(StorageError):
            SetAssocCache(size_bytes=1000, line_bytes=64, ways=2)
        with pytest.raises(StorageError):
            SetAssocCache(size_bytes=1024, line_bytes=60, ways=2)
        with pytest.raises(StorageError):
            SetAssocCache(size_bytes=0)


class TestBehaviour:
    def test_cold_miss_then_hit(self):
        c = _cache()
        c.access(np.array([0]))
        assert c.stats.misses == 1
        c.access(np.array([0]))
        assert c.stats.hits == 1

    def test_same_line_is_hit(self):
        c = _cache(line=64)
        c.access(np.array([0, 63]))
        assert c.stats.misses == 1
        assert c.stats.hits == 1

    def test_lru_eviction_within_set(self):
        c = _cache(size=1024, line=64, ways=2)  # 8 sets
        set_stride = 64 * 8  # addresses mapping to the same set
        a, b, d = 0, set_stride, 2 * set_stride
        c.access(np.array([a, b]))  # fill both ways
        c.access(np.array([d]))  # evicts a (LRU)
        local = c.access(np.array([a]))
        assert local.misses == 1

    def test_lru_order_refreshed_by_hit(self):
        c = _cache(size=1024, line=64, ways=2)
        stride = 64 * 8
        a, b, d = 0, stride, 2 * stride
        c.access(np.array([a, b, a]))  # a most-recent now
        c.access(np.array([d]))  # evicts b
        assert c.access(np.array([a])).hits == 1
        assert c.access(np.array([b])).misses == 1

    def test_contains(self):
        c = _cache()
        c.access(np.array([128]))
        assert c.contains(128)
        assert c.contains(129)
        assert not c.contains(128 + 64 * 8 * 100)

    def test_sequential_scan_miss_rate(self):
        # One miss per line for a cold streaming scan.
        c = _cache(size=4096, line=64, ways=4)
        addrs = np.arange(0, 64 * 100)
        c.access(addrs)
        assert c.stats.misses == 100

    def test_working_set_fits(self):
        # Repeated sweeps over a working set smaller than the cache hit
        # after the first pass.
        c = _cache(size=4096, line=64, ways=4)
        sweep = np.arange(0, 2048, 64)
        c.access(sweep)
        second = c.access(sweep)
        assert second.misses == 0

    def test_working_set_exceeds(self):
        # Cyclic sweep over 2x the cache with LRU: every access misses.
        c = _cache(size=1024, line=64, ways=2)
        sweep = np.arange(0, 2048, 64)
        c.access(sweep)
        second = c.access(sweep)
        assert second.misses == second.operations

    def test_reset(self):
        c = _cache()
        c.access(np.array([0, 1, 2]))
        c.reset()
        assert c.stats.operations == 0
        assert not c.contains(0)


class TestStats:
    def test_merge_accumulates(self):
        c = _cache()
        c.access(np.array([0]))
        c.access(np.array([0]))
        assert c.stats.operations == 2
        assert c.stats.miss_rate == pytest.approx(0.5)

    def test_empty_miss_rate(self):
        assert _cache().stats.miss_rate == 0.0
