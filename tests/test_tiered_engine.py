"""Tiered storage wired into the G-Store engine."""

import numpy as np
import pytest

from repro.algorithms.bfs import BFS
from repro.algorithms.pagerank import PageRank
from repro.engine.config import EngineConfig
from repro.engine.gstore import GStoreEngine
from repro.errors import StorageError
from repro.storage.tiered import TieredArray


def _cfg(**kw):
    base = dict(memory_bytes=64 * 1024, segment_bytes=8 * 1024)
    base.update(kw)
    return EngineConfig(**base)


class TestConfig:
    def test_fraction_validated(self):
        with pytest.raises(StorageError):
            _cfg(tiered_hot_fraction=1.5)
        with pytest.raises(StorageError):
            _cfg(tiered_hot_fraction=-0.1)

    def test_hdd_count_validated(self):
        with pytest.raises(StorageError):
            _cfg(tiered_hot_fraction=0.5, n_hdds=0)

    def test_engine_builds_tiered_array(self, tiled_undirected):
        eng = GStoreEngine(tiled_undirected, _cfg(tiered_hot_fraction=0.25))
        assert isinstance(eng.array, TieredArray)
        assert eng.array.hot_bytes == int(tiled_undirected.storage_bytes() * 0.25)


class TestBehaviour:
    def test_results_identical(self, tiled_undirected):
        ssd = BFS(root=0)
        GStoreEngine(tiled_undirected, _cfg()).run(ssd)
        tiered = BFS(root=0)
        GStoreEngine(tiled_undirected, _cfg(tiered_hot_fraction=0.25)).run(tiered)
        assert np.array_equal(ssd.result(), tiered.result())

    def test_tiered_slower_than_ssd(self, tiled_undirected):
        a = GStoreEngine(tiled_undirected, _cfg()).run(
            PageRank(max_iterations=3, tolerance=0.0)
        )
        b = GStoreEngine(tiled_undirected, _cfg(tiered_hot_fraction=0.25)).run(
            PageRank(max_iterations=3, tolerance=0.0)
        )
        assert b.io_time > a.io_time

    def test_all_hot_equals_pure_ssd_bytes(self, tiled_undirected):
        # shards=1: this test asserts the coordinator's own device-array
        # byte counters, and shard-parallel execution fetches on worker-
        # private device replicas instead (composition is covered by
        # tests/test_backends.py).
        eng = GStoreEngine(
            tiled_undirected, _cfg(tiered_hot_fraction=1.0, shards=1)
        )
        stats = eng.run(PageRank(max_iterations=2, tolerance=0.0))
        assert eng.array.hdd.bytes_read == 0
        assert eng.array.ssd.bytes_read == stats.bytes_read

    def test_bigger_hot_fraction_not_slower(self, tiled_undirected):
        times = []
        for f in [0.0, 0.5, 1.0]:
            stats = GStoreEngine(
                tiled_undirected, _cfg(tiered_hot_fraction=f)
            ).run(PageRank(max_iterations=2, tolerance=0.0))
            times.append(stats.io_time)
        assert times[2] <= times[1] <= times[0]
