"""Failure injection: corrupted payloads, short reads, bad extents.

The engine must fail loudly (typed exceptions), never silently compute on
garbage — and the fsck tool must catch what slipped past.
"""

import numpy as np
import pytest

from repro.algorithms.bfs import BFS
from repro.engine.config import EngineConfig
from repro.engine.gstore import GStoreEngine
from repro.errors import FormatError, StorageError
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.format.tiles import TiledGraph
from repro.format.validate import check_tiled_graph
from repro.storage.aio import AIOContext, IORequest
from repro.storage.file import TileStore
from repro.storage.raid import Raid0Array
from repro.util.timer import SimClock


class TestTruncatedReads:
    def test_tile_decode_rejects_short_payload(self, tiled_undirected):
        tg = tiled_undirected
        pos = next(
            p for p in range(tg.n_tiles) if tg.start_edge.edge_count(p) > 0
        )
        off, size = tg.start_edge.byte_extent(pos)
        raw = tg.payload.tobytes()[off : off + size - tg.tuple_bytes]
        with pytest.raises(FormatError):
            tg.view_from_bytes(pos, raw)

    def test_truncated_file_fails_on_load(self, tmp_path, tiled_undirected):
        d = tmp_path / "g"
        tiled_undirected.save(d)
        payload = d / "tiles.dat"
        payload.write_bytes(payload.read_bytes()[:-4])
        ext = TiledGraph.load(d, resident=False)
        algo = BFS(root=0)
        with pytest.raises((StorageError, FormatError)):
            GStoreEngine(
                ext, EngineConfig(memory_bytes=64 * 1024, segment_bytes=8 * 1024)
            ).run(algo)

    def test_short_read_detected_in_aio(self, tiled_undirected):
        # Short reads are detected centrally by AIOContext.service — a
        # persistently truncated request exhausts the retry budget and
        # surfaces as a typed, context-rich StorageError; the decode layer
        # never sees the bad bytes.
        tg = tiled_undirected
        store = TileStore.from_tiled_graph(tg)
        plan = FaultPlan(  # truncate on every attempt
            events=(
                FaultEvent(FaultKind.SHORT_READ, request=0, drop=1, count=10**6),
            )
        )
        ctx = AIOContext(
            store=store,
            array=Raid0Array(),
            clock=SimClock(),
            injector=FaultInjector(plan),
        )
        pos = next(
            p for p in range(tg.n_tiles) if tg.start_edge.edge_count(p) > 0
        )
        off, size = tg.start_edge.byte_extent(pos)
        with pytest.raises(StorageError) as ei:
            ctx.read_batch([IORequest(off, size, tag=pos)])
        assert ei.value.context["offset"] == off
        assert ei.value.context["tag"] == pos
        assert ei.value.context["attempts"] == ctx.retry.max_attempts

    def test_short_read_recovers_within_budget(self, tiled_undirected):
        # A transiently short read heals on retry; the batch completes with
        # full-size data and the recovery is counted.
        tg = tiled_undirected
        store = TileStore.from_tiled_graph(tg)
        inj = FaultInjector(FaultPlan.parse("short@0:3"))
        ctx = AIOContext(
            store=store,
            array=Raid0Array(),
            clock=SimClock(),
            injector=inj,
        )
        pos = next(
            p for p in range(tg.n_tiles) if tg.start_edge.edge_count(p) > 0
        )
        off, size = tg.start_edge.byte_extent(pos)
        events, t = ctx.read_batch([IORequest(off, size, tag=pos)])
        assert len(events[0].data) == size
        counters = inj.counters()
        assert counters["retry.attempts"] == 1
        assert counters["retry.recovered"] == 1
        assert counters["fault.short"] == 1
        assert t > 0.0


class TestCorruptPayload:
    def test_bitflip_caught_by_fsck(self, tmp_path, small_undirected):
        tg = TiledGraph.from_edge_list(small_undirected, tile_bits=7, group_q=2)
        # Flip a local ID on a diagonal tile to break the upper-triangle
        # invariant.
        for pos in range(tg.n_tiles):
            i, j = int(tg.tile_rows[pos]), int(tg.tile_cols[pos])
            if i == j and tg.start_edge.edge_count(pos) > 0:
                tv = tg.tile_view(pos)
                gsrc, gdst = tv.global_edges()
                strict = gsrc < gdst
                if not strict.any():
                    continue
                k = int(np.nonzero(strict)[0][0])
                lo = int(tg.start_edge.start_edge[pos])
                a = int(tg.payload[2 * (lo + k)])
                b = int(tg.payload[2 * (lo + k) + 1])
                tg.payload[2 * (lo + k)] = b
                tg.payload[2 * (lo + k) + 1] = a
                break
        rep = check_tiled_graph(tg)
        assert not rep.ok

    def test_out_of_range_extent_rejected(self, tiled_undirected):
        store = TileStore.from_tiled_graph(tiled_undirected)
        with pytest.raises(StorageError):
            store.read(store.size - 1, 2)


class TestGracefulEmpty:
    def test_empty_graph_runs(self):
        from repro.format.edgelist import EdgeList

        el = EdgeList.from_pairs([], n_vertices=8, directed=False)
        tg = TiledGraph.from_edge_list(el, tile_bits=2, group_q=1)
        algo = BFS(root=0)
        stats = GStoreEngine(
            tg, EngineConfig(memory_bytes=64 * 1024, segment_bytes=8 * 1024)
        ).run(algo)
        assert algo.visited_count() == 1
        assert stats.bytes_read == 0

    def test_single_vertex_graph(self):
        from repro.format.edgelist import EdgeList

        el = EdgeList.from_pairs([], n_vertices=1, directed=False)
        tg = TiledGraph.from_edge_list(el, tile_bits=1, group_q=1)
        algo = BFS(root=0)
        GStoreEngine(
            tg, EngineConfig(memory_bytes=64 * 1024, segment_bytes=8 * 1024)
        ).run(algo)
        assert algo.result().tolist() == [0]
