"""Failure injection: corrupted payloads, short reads, bad extents.

The engine must fail loudly (typed exceptions), never silently compute on
garbage — and the fsck tool must catch what slipped past.
"""

import numpy as np
import pytest

from repro.algorithms.bfs import BFS
from repro.engine.config import EngineConfig
from repro.engine.gstore import GStoreEngine
from repro.errors import FormatError, StorageError
from repro.format.tiles import TiledGraph
from repro.format.validate import check_tiled_graph
from repro.storage.aio import AIOContext, IORequest
from repro.storage.file import TileStore
from repro.storage.raid import Raid0Array
from repro.util.timer import SimClock


class _ShortReadStore(TileStore):
    """A store whose reads are silently truncated after a byte budget."""

    def __init__(self, data: bytes, fail_after: int):
        super().__init__(data=data)
        self._served = 0
        self._fail_after = fail_after

    def read(self, offset: int, size: int) -> bytes:
        out = super().read(offset, size)
        self._served += size
        if self._served > self._fail_after:
            return out[: max(0, len(out) - 1)]  # drop the final byte
        return out


class TestTruncatedReads:
    def test_tile_decode_rejects_short_payload(self, tiled_undirected):
        tg = tiled_undirected
        pos = next(
            p for p in range(tg.n_tiles) if tg.start_edge.edge_count(p) > 0
        )
        off, size = tg.start_edge.byte_extent(pos)
        raw = tg.payload.tobytes()[off : off + size - tg.tuple_bytes]
        with pytest.raises(FormatError):
            tg.view_from_bytes(pos, raw)

    def test_truncated_file_fails_on_load(self, tmp_path, tiled_undirected):
        d = tmp_path / "g"
        tiled_undirected.save(d)
        payload = d / "tiles.dat"
        payload.write_bytes(payload.read_bytes()[:-4])
        ext = TiledGraph.load(d, resident=False)
        algo = BFS(root=0)
        with pytest.raises((StorageError, FormatError)):
            GStoreEngine(
                ext, EngineConfig(memory_bytes=64 * 1024, segment_bytes=8 * 1024)
            ).run(algo)

    def test_short_read_store_detected(self, tiled_undirected):
        tg = tiled_undirected
        store = _ShortReadStore(tg.payload.tobytes(), fail_after=256)
        clock = SimClock()
        ctx = AIOContext(store=store, array=Raid0Array(), clock=clock)
        # Eventually a truncated event arrives; decoding it must raise.
        with pytest.raises(FormatError):
            for pos in range(tg.n_tiles):
                if tg.start_edge.edge_count(pos) == 0:
                    continue
                off, size = tg.start_edge.byte_extent(pos)
                events, _ = ctx.read_batch([IORequest(off, size, tag=pos)])
                tg.view_from_bytes(pos, events[0].data)


class TestCorruptPayload:
    def test_bitflip_caught_by_fsck(self, tmp_path, small_undirected):
        tg = TiledGraph.from_edge_list(small_undirected, tile_bits=7, group_q=2)
        # Flip a local ID on a diagonal tile to break the upper-triangle
        # invariant.
        for pos in range(tg.n_tiles):
            i, j = int(tg.tile_rows[pos]), int(tg.tile_cols[pos])
            if i == j and tg.start_edge.edge_count(pos) > 0:
                tv = tg.tile_view(pos)
                gsrc, gdst = tv.global_edges()
                strict = gsrc < gdst
                if not strict.any():
                    continue
                k = int(np.nonzero(strict)[0][0])
                lo = int(tg.start_edge.start_edge[pos])
                a = int(tg.payload[2 * (lo + k)])
                b = int(tg.payload[2 * (lo + k) + 1])
                tg.payload[2 * (lo + k)] = b
                tg.payload[2 * (lo + k) + 1] = a
                break
        rep = check_tiled_graph(tg)
        assert not rep.ok

    def test_out_of_range_extent_rejected(self, tiled_undirected):
        store = TileStore.from_tiled_graph(tiled_undirected)
        with pytest.raises(StorageError):
            store.read(store.size - 1, 2)


class TestGracefulEmpty:
    def test_empty_graph_runs(self):
        from repro.format.edgelist import EdgeList

        el = EdgeList.from_pairs([], n_vertices=8, directed=False)
        tg = TiledGraph.from_edge_list(el, tile_bits=2, group_q=1)
        algo = BFS(root=0)
        stats = GStoreEngine(
            tg, EngineConfig(memory_bytes=64 * 1024, segment_bytes=8 * 1024)
        ).run(algo)
        assert algo.visited_count() == 1
        assert stats.bytes_read == 0

    def test_single_vertex_graph(self):
        from repro.format.edgelist import EdgeList

        el = EdgeList.from_pairs([], n_vertices=1, directed=False)
        tg = TiledGraph.from_edge_list(el, tile_bits=1, group_q=1)
        algo = BFS(root=0)
        GStoreEngine(
            tg, EngineConfig(memory_bytes=64 * 1024, segment_bytes=8 * 1024)
        ).run(algo)
        assert algo.result().tolist() == [0]
