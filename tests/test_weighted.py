"""Weighted-graph support: edge-list plumbing, tile alignment, SSSP."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.sssp import SSSP
from repro.engine.config import EngineConfig
from repro.engine.gstore import GStoreEngine
from repro.errors import FormatError
from repro.format.edgelist import EdgeList
from repro.format.tiles import TiledGraph


@pytest.fixture(scope="module")
def weighted_el():
    """A connected undirected weighted graph without duplicate edges."""
    rng = np.random.default_rng(23)
    v = 400
    ring_src = np.arange(v, dtype=np.uint32)
    ring_dst = np.roll(ring_src, -1)
    extra = rng.integers(0, v, 1200).reshape(600, 2)
    el = EdgeList(
        np.concatenate([ring_src, extra[:, 0].astype(np.uint32)]),
        np.concatenate([ring_dst, extra[:, 1].astype(np.uint32)]),
        v,
        directed=False,
        name="weighted",
    )
    canon = el.canonicalized()  # unique edges, no self loops
    w = rng.uniform(0.5, 10.0, canon.n_edges).astype(np.float32)
    return EdgeList(
        canon.src, canon.dst, v, directed=False, name="weighted", weights=w
    )


class TestEdgeListWeights:
    def test_validation(self):
        with pytest.raises(FormatError):
            EdgeList(
                np.array([0], np.uint32),
                np.array([1], np.uint32),
                2,
                weights=np.array([1.0, 2.0]),
            )

    def test_canonicalize_carries_weights(self):
        el = EdgeList(
            np.array([3, 0], np.uint32),
            np.array([1, 2], np.uint32),
            4,
            directed=False,
            weights=np.array([7.0, 9.0], np.float32),
        )
        canon = el.canonicalized()
        lookup = {
            (int(u), int(v)): float(w)
            for u, v, w in zip(canon.src, canon.dst, canon.weights)
        }
        assert lookup == {(1, 3): 7.0, (0, 2): 9.0}

    def test_symmetrize_duplicates_weights(self, weighted_el):
        sym = weighted_el.symmetrized()
        assert sym.weights.shape[0] == 2 * weighted_el.n_edges
        assert np.allclose(sym.weights[: weighted_el.n_edges],
                           sym.weights[weighted_el.n_edges :])

    def test_self_loop_filter_keeps_alignment(self):
        el = EdgeList(
            np.array([0, 1], np.uint32),
            np.array([0, 2], np.uint32),
            3,
            directed=True,
            weights=np.array([5.0, 6.0], np.float32),
        )
        clean = el.without_self_loops()
        assert clean.weights.tolist() == [6.0]

    def test_save_load_roundtrip(self, tmp_path, weighted_el):
        p = tmp_path / "w.bin"
        weighted_el.save(p)
        back = EdgeList.load(p)
        assert np.allclose(back.weights, weighted_el.weights)
        assert np.array_equal(back.src, weighted_el.src)

    def test_unweighted_load_has_none(self, tmp_path):
        el = EdgeList.from_pairs([(0, 1)], n_vertices=2)
        p = tmp_path / "u.bin"
        el.save(p)
        assert EdgeList.load(p).weights is None


class TestTiledWeights:
    def test_tile_weights_aligned(self, weighted_el):
        tg = TiledGraph.from_edge_list(weighted_el, tile_bits=6, group_q=2)
        # Rebuild the (edge -> weight) map and check every tile slice.
        expect = {
            (int(u), int(v)): float(w)
            for u, v, w in zip(
                weighted_el.src, weighted_el.dst, weighted_el.weights
            )
        }
        seen = 0
        for tv in tg.iter_tiles():
            w = tg.tile_weights(tv.pos)
            gsrc, gdst = tv.global_edges()
            for u, v, wt in zip(gsrc.tolist(), gdst.tolist(), w.tolist()):
                assert expect[(u, v)] == pytest.approx(wt)
                seen += 1
        assert seen == tg.n_edges

    def test_unweighted_returns_none(self, tiled_undirected):
        assert tiled_undirected.tile_weights(0) is None

    def test_save_load_weights(self, tmp_path, weighted_el):
        tg = TiledGraph.from_edge_list(weighted_el, tile_bits=6, group_q=2)
        d = tmp_path / "wg"
        tg.save(d)
        back = TiledGraph.load(d)
        assert np.allclose(back.edge_weights, tg.edge_weights)

    def test_semi_external_keeps_weights_resident(self, tmp_path, weighted_el):
        tg = TiledGraph.from_edge_list(weighted_el, tile_bits=6, group_q=2)
        d = tmp_path / "wg"
        tg.save(d)
        ext = TiledGraph.load(d, resident=False)
        assert ext.payload is None
        assert ext.edge_weights is not None


class TestWeightedSSSP:
    def test_matches_dijkstra_on_real_weights(self, weighted_el):
        tg = TiledGraph.from_edge_list(weighted_el, tile_bits=6, group_q=2)
        algo = SSSP(root=0)
        GStoreEngine(
            tg, EngineConfig(memory_bytes=64 * 1024, segment_bytes=8 * 1024)
        ).run(algo)
        g = nx.Graph()
        g.add_nodes_from(range(weighted_el.n_vertices))
        for u, v, w in zip(
            weighted_el.src.tolist(),
            weighted_el.dst.tolist(),
            weighted_el.weights.tolist(),
        ):
            g.add_edge(u, v, weight=w)
        ref = nx.single_source_dijkstra_path_length(g, 0)
        dist = algo.result()
        for v, expect in ref.items():
            assert dist[v] == pytest.approx(expect, rel=1e-6)

    def test_unweighted_still_uses_hash_weights(self, tiled_undirected):
        # Regression: graphs without weights keep the old deterministic
        # behaviour.
        a = SSSP(root=0)
        GStoreEngine(
            tiled_undirected,
            EngineConfig(memory_bytes=64 * 1024, segment_bytes=8 * 1024),
        ).run(a)
        b = SSSP(root=0)
        GStoreEngine(
            tiled_undirected,
            EngineConfig(memory_bytes=64 * 1024, segment_bytes=8 * 1024),
        ).run(b)
        assert np.array_equal(a.result(), b.result())
