"""Unit tests for the slide-cache-rewind scheduler state (§VI)."""

import numpy as np
import pytest

from repro.format.startedge import StartEdgeIndex
from repro.memory.scr import CachePolicy, SCRScheduler
from repro.memory.segments import MemoryBudget, TileBuffer


@pytest.fixture()
def start_edge():
    # Five tiles with 10, 0, 20, 5, 15 edges at 4 bytes per tuple.
    return StartEdgeIndex.from_counts([10, 0, 20, 5, 15], tuple_bytes=4)


def _sched(policy=CachePolicy.SCR, total=400, seg=100):
    return SCRScheduler(
        budget=MemoryBudget(total_bytes=total, segment_bytes=seg), policy=policy
    )


def _buf(pos, size, i=0, j=0):
    return TileBuffer(pos=pos, i=i, j=j, data=b"e" * size)


class TestSplitCached:
    def test_nothing_cached_initially(self, start_edge):
        s = _sched()
        cached, fetch = s.split_cached([0, 2, 4], start_edge)
        assert cached.size == 0
        assert fetch.tolist() == [0, 2, 4]

    def test_returns_int64_arrays(self, start_edge):
        s = _sched()
        cached, fetch = s.split_cached(
            np.array([0, 2, 4], dtype=np.int64), start_edge
        )
        assert cached.dtype == np.int64
        assert fetch.dtype == np.int64

    def test_cached_tiles_split_out(self, start_edge):
        s = _sched()
        s.pool.add(_buf(2, 80))
        cached, fetch = s.split_cached([0, 2, 4], start_edge)
        assert cached.tolist() == [2]
        assert fetch.tolist() == [0, 4]
        assert s.stats.cache_hits == 1
        assert s.stats.bytes_from_cache == 80

    def test_base_policy_never_caches(self, start_edge):
        s = _sched(policy=CachePolicy.BASE)
        s.pool.add(_buf(2, 80))  # capacity 0 -> refused anyway
        cached, fetch = s.split_cached([2], start_edge)
        assert cached.size == 0
        assert fetch.tolist() == [2]


class TestSegmentBatches:
    def test_batches_respect_segment_size(self, start_edge):
        s = _sched(seg=100)
        batches = s.segment_batches([0, 2, 3, 4], start_edge)
        for batch in batches:
            size = sum(start_edge.byte_extent(p)[1] for p in batch)
            assert size <= 100 or len(batch) == 1

    def test_all_positions_covered_in_order(self, start_edge):
        s = _sched(seg=60)
        batches = s.segment_batches([0, 2, 3, 4], start_edge)
        flat = [p for b in batches for p in b]
        assert flat == [0, 2, 3, 4]

    def test_oversized_tile_travels_alone(self):
        se = StartEdgeIndex.from_counts([100, 1], tuple_bytes=4)
        s = _sched(seg=50)
        batches = s.segment_batches([0, 1], se)
        assert batches[0] == [0]

    def test_empty(self, start_edge):
        assert _sched().segment_batches([], start_edge) == []


class TestOfferAndAnalysis:
    def _geometry(self):
        tile_rows = np.array([0, 0, 1, 1, 2])
        tile_cols = np.array([0, 1, 1, 2, 2])
        return tile_rows, tile_cols

    def test_unneeded_tiles_not_cached(self):
        s = _sched()
        rows, cols = self._geometry()
        active_next = np.array([False, False, False])
        s.offer([_buf(0, 10)], rows, cols, active_next, symmetric=True)
        assert len(s.pool) == 0

    def test_needed_tiles_cached(self):
        s = _sched()
        rows, cols = self._geometry()
        active_next = np.array([True, False, False])
        s.offer([_buf(0, 10), _buf(2, 10)], rows, cols, active_next, True)
        assert 0 in s.pool  # row 0 active
        assert 2 not in s.pool  # rows 1,1 inactive

    def test_analysis_evicts_on_pressure(self):
        s = _sched(total=220, seg=100)  # pool capacity 20
        rows, cols = self._geometry()
        # Tile 0 cached while row 0 was believed active...
        s.offer([_buf(0, 15)], rows, cols, np.array([True, False, False]), True)
        assert 0 in s.pool
        # ...later knowledge says only row 2 is active; offering tile 4
        # forces the analysis, which evicts tile 0 and admits tile 4.
        s.offer([_buf(4, 15)], rows, cols, np.array([False, False, True]), True)
        assert 0 not in s.pool
        assert 4 in s.pool
        assert s.stats.analyses >= 1
        assert s.stats.tiles_evicted >= 1

    def test_drop_when_no_room_even_after_analysis(self):
        s = _sched(total=210, seg=100)  # pool capacity 10
        rows, cols = self._geometry()
        active = np.array([True, True, True])
        s.offer([_buf(0, 10)], rows, cols, active, True)
        s.offer([_buf(2, 10)], rows, cols, active, True)  # no space, all needed
        assert 0 in s.pool
        assert 2 not in s.pool

    def test_base_policy_offer_is_noop(self):
        s = _sched(policy=CachePolicy.BASE)
        rows, cols = self._geometry()
        s.offer([_buf(0, 10)], rows, cols, np.array([True, True, True]), True)
        assert len(s.pool) == 0

    def test_end_iteration_analysis(self):
        s = _sched()
        rows, cols = self._geometry()
        s.offer([_buf(0, 10)], rows, cols, np.array([True, False, False]), True)
        s.end_iteration(rows, cols, np.array([False, False, False]), True)
        assert len(s.pool) == 0

    def test_cached_buffer_lookup(self):
        s = _sched()
        rows, cols = self._geometry()
        s.offer([_buf(0, 10)], rows, cols, np.array([True, False, False]), True)
        assert s.cached_buffer(0).nbytes == 10
        with pytest.raises(KeyError):
            s.cached_buffer(3)
