#!/usr/bin/env python
"""Kernel-throughput benchmark: per-tile vs fused vs fused+parallel.

Runs each fused algorithm through the G-Store engine three times — the
per-tile reference loop, the fused batch kernels, and the fused kernels
sharded row-parallel over worker threads (§VI-B) — and records edges/sec
and wall seconds for every mode into ``BENCH_kernels.json`` at the repo
root.  This is the perf trajectory file future PRs extend.

Usage::

    python benchmarks/bench_kernel_throughput.py             # full run
    python benchmarks/bench_kernel_throughput.py --scale 12  # CI smoke run
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.algorithms.bfs import BFS  # noqa: E402
from repro.algorithms.cc import ConnectedComponents  # noqa: E402
from repro.algorithms.kcore import KCore  # noqa: E402
from repro.algorithms.pagerank import PageRank  # noqa: E402
from repro.algorithms.spmv import SpMV  # noqa: E402
from repro.engine.config import EngineConfig  # noqa: E402
from repro.engine.gstore import GStoreEngine  # noqa: E402
from repro.format.tiles import TiledGraph  # noqa: E402
from repro.graphgen.rmat import rmat  # noqa: E402
from repro.runtime.threads import default_workers  # noqa: E402

ALGOS = {
    "pagerank": lambda: PageRank(max_iterations=5, tolerance=0.0),
    "bfs": lambda: BFS(root=0),
    "spmv": lambda: SpMV(iterations=3),
    "cc": lambda: ConnectedComponents(),
    "kcore": lambda: KCore(k=8),
}


def build_graph(scale: int, edge_factor: int, tile_bits: int, seed: int) -> TiledGraph:
    el = rmat(scale, edge_factor=edge_factor, seed=seed)
    return TiledGraph.from_edge_list(el, tile_bits=tile_bits, group_q=16)


def run_mode(tg: TiledGraph, factory, fused: bool, workers: int, repeats: int):
    """Best-of-N engine run; returns (wall_seconds, edges_processed)."""
    best = None
    edges = 0
    for _ in range(repeats):
        cfg = EngineConfig(
            memory_bytes=256 * 1024 * 1024,
            segment_bytes=8 * 1024 * 1024,
            fused=fused,
            workers=workers,
        )
        engine = GStoreEngine(tg, cfg)
        algo = factory()
        t0 = time.perf_counter()
        stats = engine.run(algo)
        wall = time.perf_counter() - t0
        edges = stats.edges_processed
        best = wall if best is None else min(best, wall)
    return best, edges


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", type=int, default=18, help="log2 of |V| (default 18)")
    ap.add_argument("--edge-factor", type=int, default=8)
    # 2^10-vertex tiles: the many-small-tiles regime the fused layer
    # targets (a trillion-edge graph at the paper's 2^16-vertex tiles has
    # millions of tiles — per-tile dispatch overhead is the bottleneck).
    ap.add_argument("--tile-bits", type=int, default=10)
    ap.add_argument("--seed", type=int, default=42)
    ap.add_argument("--repeats", type=int, default=2)
    ap.add_argument("--workers", type=int, default=None,
                    help="threads for the parallel mode (default: all cores)")
    ap.add_argument("--algos", nargs="*", default=sorted(ALGOS),
                    choices=sorted(ALGOS))
    ap.add_argument("--min-fused-speedup", type=float, default=None,
                    help="exit nonzero if any algorithm's fused speedup over "
                         "the per-tile loop falls below this threshold")
    ap.add_argument("--out", default=os.path.join(ROOT, "BENCH_kernels.json"))
    args = ap.parse_args(argv)

    workers = args.workers or default_workers()
    modes = [
        ("per-tile", False, 1),
        ("fused", True, 1),
        ("fused+parallel", True, workers),
    ]

    print(f"building R-MAT graph: 2^{args.scale} vertices, "
          f"edge_factor={args.edge_factor}, tile_bits={args.tile_bits} ...")
    tg = build_graph(args.scale, args.edge_factor, args.tile_bits, args.seed)
    print(f"  {tg!r}  ({tg.n_tiles} tile slots)")

    results = {}
    for name in args.algos:
        factory = ALGOS[name]
        results[name] = {}
        for label, fused, w in modes:
            wall, edges = run_mode(tg, factory, fused, w, args.repeats)
            eps = edges / wall if wall > 0 else float("inf")
            results[name][label] = {
                "wall_seconds": wall,
                "edges_processed": edges,
                "edges_per_sec": eps,
            }
            print(f"  {name:10s} {label:15s} {wall:8.3f}s  "
                  f"{eps / 1e6:9.2f} M edges/s")
        base = results[name]["per-tile"]["edges_per_sec"]
        for label in ("fused", "fused+parallel"):
            results[name][label]["speedup_vs_per_tile"] = (
                results[name][label]["edges_per_sec"] / base
            )
        print(f"  {name:10s} speedup: fused "
              f"{results[name]['fused']['speedup_vs_per_tile']:.2f}x, "
              f"fused+parallel "
              f"{results[name]['fused+parallel']['speedup_vs_per_tile']:.2f}x")

    payload = {
        "benchmark": "kernel_throughput",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
            "parallel_workers": workers,
        },
        "graph": {
            "scale": args.scale,
            "n_vertices": tg.n_vertices,
            "stored_edges": tg.n_edges,
            "edge_factor": args.edge_factor,
            "tile_bits": args.tile_bits,
            "seed": args.seed,
        },
        "results": results,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    if args.min_fused_speedup is not None:
        ok = True
        for name in args.algos:
            sp = results[name]["fused"]["speedup_vs_per_tile"]
            status = "ok" if sp >= args.min_fused_speedup else "TOO SLOW"
            print(f"  fused gate {name}: {sp:.2f}x "
                  f"(need >= {args.min_fused_speedup:.2f}x) [{status}]")
            ok = ok and sp >= args.min_fused_speedup
        if not ok:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
