#!/usr/bin/env python
"""Kernel-throughput benchmark: per-tile vs fused vs parallel backends.

Runs each fused algorithm through the G-Store engine in four modes — the
per-tile reference loop, the fused batch kernels, and the fused kernels
sharded over the thread backend and over the shared-memory *process*
backend (true multicore, no GIL) — and records edges/sec and wall
seconds for every mode into ``BENCH_kernels.json`` at the repo root.
This is the perf trajectory file future PRs extend.

Backend pools are warmed before timing: the process backend's one-time
interpreter+NumPy spawn amortises to zero in a persistent engine, so
charging it to the first measured iteration would only measure start-up.

Usage::

    python benchmarks/bench_kernel_throughput.py             # full run
    python benchmarks/bench_kernel_throughput.py --scale 12  # CI smoke run
    python benchmarks/bench_kernel_throughput.py --min-process-speedup 1.7
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.algorithms.bfs import BFS  # noqa: E402
from repro.algorithms.cc import ConnectedComponents  # noqa: E402
from repro.algorithms.kcore import KCore  # noqa: E402
from repro.algorithms.pagerank import PageRank  # noqa: E402
from repro.algorithms.spmv import SpMV  # noqa: E402
from repro.engine.config import EngineConfig  # noqa: E402
from repro.engine.gstore import GStoreEngine  # noqa: E402
from repro.format.tiles import TiledGraph  # noqa: E402
from repro.graphgen.rmat import rmat  # noqa: E402
from repro.runtime.threads import (  # noqa: E402
    available_cpus,
    default_workers,
    execution_fingerprint,
)

ALGOS = {
    "pagerank": lambda: PageRank(max_iterations=5, tolerance=0.0),
    "bfs": lambda: BFS(root=0),
    "spmv": lambda: SpMV(iterations=3),
    "cc": lambda: ConnectedComponents(),
    "kcore": lambda: KCore(k=8),
}


def build_graph(scale: int, edge_factor: int, tile_bits: int, seed: int) -> TiledGraph:
    el = rmat(scale, edge_factor=edge_factor, seed=seed)
    return TiledGraph.from_edge_list(el, tile_bits=tile_bits, group_q=16)


def run_mode(
    tg: TiledGraph, factory, fused: bool, workers: int, repeats: int,
    backend: str = "thread",
):
    """Best-of-N engine run; returns (wall_seconds, edges_processed, backend).

    The returned backend is the *live* one — if the process backend fell
    back to threads (no /dev/shm, sandboxed spawn) the record says so
    instead of mislabelling thread numbers as process numbers.
    """
    best = None
    edges = 0
    live = backend
    for _ in range(repeats):
        cfg = EngineConfig(
            memory_bytes=256 * 1024 * 1024,
            segment_bytes=8 * 1024 * 1024,
            fused=fused,
            workers=workers,
            backend=backend,
        )
        with GStoreEngine(tg, cfg) as engine:
            # Pool spawn (threads or processes) happens off the clock.
            engine.warm_backend()
            algo = factory()
            t0 = time.perf_counter()
            stats = engine.run(algo)
            wall = time.perf_counter() - t0
            edges = stats.edges_processed
            live = engine.backend_resolved
        best = wall if best is None else min(best, wall)
    return best, edges, live


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", type=int, default=18, help="log2 of |V| (default 18)")
    ap.add_argument("--edge-factor", type=int, default=8)
    # 2^10-vertex tiles: the many-small-tiles regime the fused layer
    # targets (a trillion-edge graph at the paper's 2^16-vertex tiles has
    # millions of tiles — per-tile dispatch overhead is the bottleneck).
    ap.add_argument("--tile-bits", type=int, default=10)
    ap.add_argument("--seed", type=int, default=42)
    ap.add_argument("--repeats", type=int, default=2)
    ap.add_argument("--workers", type=int, default=None,
                    help="workers for the parallel modes (default: all "
                         "cores, minimum 2 so the pools genuinely engage "
                         "— at 1 worker both backends route through the "
                         "serial path and the comparison measures noise)")
    ap.add_argument("--backends", nargs="*", default=["thread", "process"],
                    choices=["thread", "process"],
                    help="parallel backends to measure (default: both)")
    ap.add_argument("--algos", nargs="*", default=sorted(ALGOS),
                    choices=sorted(ALGOS))
    ap.add_argument("--min-fused-speedup", type=float, default=None,
                    help="exit nonzero if any algorithm's fused speedup over "
                         "the per-tile loop falls below this threshold")
    ap.add_argument("--min-process-speedup", type=float, default=None,
                    help="exit nonzero if the aggregate process-vs-thread "
                         "speedup falls below this threshold; only enforced "
                         "when >= 2 CPUs are available (reported otherwise)")
    ap.add_argument("--out", default=os.path.join(ROOT, "BENCH_kernels.json"))
    args = ap.parse_args(argv)

    workers = args.workers or max(2, default_workers())
    modes = [
        ("per-tile", False, 1, "thread"),
        ("fused", True, 1, "thread"),
    ]
    if "thread" in args.backends:
        modes.append(("fused+parallel", True, workers, "thread"))
    if "process" in args.backends:
        modes.append(("fused+process", True, workers, "process"))

    print(f"building R-MAT graph: 2^{args.scale} vertices, "
          f"edge_factor={args.edge_factor}, tile_bits={args.tile_bits} ...")
    tg = build_graph(args.scale, args.edge_factor, args.tile_bits, args.seed)
    print(f"  {tg!r}  ({tg.n_tiles} tile slots)")

    results = {}
    for name in args.algos:
        factory = ALGOS[name]
        results[name] = {}
        for label, fused, w, backend in modes:
            wall, edges, live = run_mode(
                tg, factory, fused, w, args.repeats, backend=backend
            )
            eps = edges / wall if wall > 0 else float("inf")
            results[name][label] = {
                "wall_seconds": wall,
                "edges_processed": edges,
                "edges_per_sec": eps,
                "backend": live,
            }
            print(f"  {name:10s} {label:15s} {wall:8.3f}s  "
                  f"{eps / 1e6:9.2f} M edges/s  [{live}]")
        base = results[name]["per-tile"]["edges_per_sec"]
        for label, _, _, _ in modes[1:]:
            results[name][label]["speedup_vs_per_tile"] = (
                results[name][label]["edges_per_sec"] / base
            )
        if "fused+parallel" in results[name] and "fused+process" in results[name]:
            results[name]["fused+process"]["speedup_vs_thread"] = (
                results[name]["fused+process"]["edges_per_sec"]
                / results[name]["fused+parallel"]["edges_per_sec"]
            )
        line = ", ".join(
            f"{label} {results[name][label]['speedup_vs_per_tile']:.2f}x"
            for label, _, _, _ in modes[1:]
        )
        print(f"  {name:10s} speedup vs per-tile: {line}")

    payload = {
        "benchmark": "kernel_throughput",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
            "parallel_workers": workers,
            **execution_fingerprint(workers=workers),
        },
        "graph": {
            "scale": args.scale,
            "n_vertices": tg.n_vertices,
            "stored_edges": tg.n_edges,
            "edge_factor": args.edge_factor,
            "tile_bits": args.tile_bits,
            "seed": args.seed,
        },
        "results": results,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    ok = True
    if args.min_fused_speedup is not None:
        for name in args.algos:
            sp = results[name]["fused"]["speedup_vs_per_tile"]
            status = "ok" if sp >= args.min_fused_speedup else "TOO SLOW"
            print(f"  fused gate {name}: {sp:.2f}x "
                  f"(need >= {args.min_fused_speedup:.2f}x) [{status}]")
            ok = ok and sp >= args.min_fused_speedup
    if args.min_process_speedup is not None:
        gate_ok, enforced = _process_gate(
            results, args.algos, args.min_process_speedup
        )
        ok = ok and (gate_ok or not enforced)
    return 0 if ok else 1


def _process_gate(results, algos, threshold: float) -> "tuple[bool, bool]":
    """Aggregate process-vs-thread gate; returns (passed, enforced).

    The aggregate is throughput-of-totals — sum(edges)/sum(wall) on each
    backend — so long-running algorithms weigh in proportion to the work
    they do, rather than a mean of per-algo ratios where a trivial run
    could swamp the result.  On a single-core runner true parallelism is
    physically impossible, so the gate reports instead of enforcing.
    """
    walls = {"fused+parallel": 0.0, "fused+process": 0.0}
    edge_sum = {"fused+parallel": 0, "fused+process": 0}
    degraded = False
    for name in algos:
        for label in walls:
            rec = results[name].get(label)
            if rec is None:
                print(f"  process gate: mode {label!r} was not measured")
                return True, False
            walls[label] += rec["wall_seconds"]
            edge_sum[label] += rec["edges_processed"]
        if results[name]["fused+process"]["backend"] != "process":
            degraded = True
    thr = {
        label: edge_sum[label] / walls[label] if walls[label] > 0 else 0.0
        for label in walls
    }
    agg = (
        thr["fused+process"] / thr["fused+parallel"]
        if thr["fused+parallel"] > 0
        else 0.0
    )
    cpus = available_cpus()
    enforced = cpus >= 2 and not degraded
    passed = agg >= threshold
    status = "ok" if passed else "TOO SLOW"
    if not enforced:
        reason = (
            "process backend degraded to threads"
            if degraded
            else f"only {cpus} CPU available"
        )
        status = f"reported only: {reason}"
    print(f"  process gate: aggregate process-vs-thread {agg:.2f}x "
          f"(need >= {threshold:.2f}x) [{status}]")
    return passed, enforced


if __name__ == "__main__":
    raise SystemExit(main())
