"""Figure 5: per-tile edge counts of the Twitter stand-in."""

from conftest import record

from repro.bench.experiments import fig5_tile_distribution


def test_fig5_tile_skew(benchmark):
    tbl, data = benchmark.pedantic(
        fig5_tile_distribution, rounds=1, iterations=1
    )
    record("fig05_tile_distribution", tbl)
    benchmark.extra_info["frac_empty"] = round(data["frac_empty"], 3)
    benchmark.extra_info["frac_under_1000"] = round(data["frac_small"], 3)
    # Paper: 40% empty, 82% under 1000 edges for Twitter.
    assert 0.2 < data["frac_empty"] < 0.8
    assert data["frac_small"] > 0.8
    # The sorted-count curve must span orders of magnitude.
    counts = data["counts_sorted"]
    assert counts[0] > 1000 * max(1, counts[len(counts) // 2])
