"""Figure 10: speedup from symmetry and SNB storage savings."""

from conftest import record

from repro.bench.experiments import fig10_space_saving


def test_fig10_space_saving(benchmark):
    tbl, times = benchmark.pedantic(fig10_space_saving, rounds=1, iterations=1)
    record("fig10_space_saving", tbl)
    for algo in ["bfs", "pagerank"]:
        sym = times["base"][algo] / times["symmetry"][algo]
        snb = times["base"][algo] / times["symmetry+snb"][algo]
        benchmark.extra_info[f"{algo}_symmetry"] = round(sym, 2)
        benchmark.extra_info[f"{algo}_symmetry_snb"] = round(snb, 2)
        # Paper: symmetry ~2x; symmetry+SNB 4.9x (BFS) / 4.8x (PR) —
        # "more than 4x (the space-saving factor) because G-Store is able
        # to cache more data".
        assert 1.5 < sym < 3.0
        assert snb > 3.0
        assert snb > sym
