"""Table II: storage sizes of edge list vs CSR vs G-Store tiles."""

from conftest import record

from repro.bench.experiments import table2_sizes


def test_table2_sizes(benchmark):
    """Regenerate Table II (measured local rows + analytic paper rows)."""
    tbl, data = benchmark(table2_sizes)
    record("table2_sizes", tbl)
    # Paper rows must be exact.
    assert data["paper:Kron-28-16"].saving_vs_edge_list == 4.0
    assert data["paper:Kron-28-16"].saving_vs_csr == 2.0
    assert data["paper:Kron-33-16"].saving_vs_edge_list == 8.0
    assert data["paper:Kron-33-16"].saving_vs_csr == 4.0
    assert data["paper:Twitter"].saving_vs_edge_list == 2.0
    # Local undirected graphs reach the full 8x with byte-narrow locals.
    assert data["kron-small-16"].saving_vs_edge_list >= 4.0
