"""Micro-benchmarks of the hot kernels (pytest-benchmark timing targets).

These are the pieces profiling identifies as the inner loops: SNB
pack/unpack, the per-tile BFS and PageRank kernels, and the two-pass tile
conversion.  They give wall-clock throughput numbers for this Python
implementation (the simulated timeline is calibrated separately).
"""

import numpy as np

from repro.algorithms.bfs import BFS
from repro.algorithms.pagerank import PageRank
from repro.bench.harness import graphs
from repro.format.snb import pack_tuples, unpack_tuples
from repro.format.tiles import TiledGraph


def _biggest_tile(tg: TiledGraph):
    counts = tg.tile_edge_counts()
    return tg.tile_view(int(counts.argmax()))


def test_kernel_snb_pack(benchmark):
    rng = np.random.default_rng(1)
    lsrc = rng.integers(0, 1 << 16, 1_000_000).astype(np.uint16)
    ldst = rng.integers(0, 1 << 16, 1_000_000).astype(np.uint16)
    buf = benchmark(pack_tuples, lsrc, ldst, 16)
    assert len(buf) == 4_000_000


def test_kernel_snb_unpack(benchmark):
    rng = np.random.default_rng(1)
    lsrc = rng.integers(0, 1 << 16, 1_000_000).astype(np.uint16)
    ldst = rng.integers(0, 1 << 16, 1_000_000).astype(np.uint16)
    buf = pack_tuples(lsrc, ldst, 16)
    s, d = benchmark(unpack_tuples, buf, 16)
    assert s.shape[0] == 1_000_000


def test_kernel_bfs_tile(benchmark):
    tg = graphs().tiled("kron-small-16")
    tv = _biggest_tile(tg)
    algo = BFS(root=0)
    algo.setup(tg)

    def run():
        algo.depth[:] = np.iinfo(np.uint32).max
        algo.depth[0] = 0
        algo.level = 0
        return algo.process_tile(tv)

    edges = benchmark(run)
    benchmark.extra_info["edges_per_call"] = edges


def test_kernel_pagerank_tile(benchmark):
    tg = graphs().tiled("kron-small-16")
    tv = _biggest_tile(tg)
    algo = PageRank()
    algo.setup(tg)
    algo.begin_iteration(0)
    edges = benchmark(algo.process_tile, tv)
    benchmark.extra_info["edges_per_call"] = edges


def test_kernel_tile_build(benchmark):
    el = graphs().edge_list("kron-small-16")
    tg = benchmark(TiledGraph.from_edge_list, el, 11, 8)
    assert tg.n_edges > 0
