#!/usr/bin/env python
"""Load generator for the concurrent query service (docs/SERVING.md).

Drives a :class:`~repro.serve.service.QueryService` over one shared
read-only engine with a fixed mixed-query workload and measures serving
latency two ways:

* **closed loop** — ``c`` client threads, each issuing its next query
  the moment the previous one returns.  Sweeping ``c`` produces the
  saturation curve: throughput climbs until the worker pool saturates,
  then p99 latency grows with queue depth.
* **open loop** — queries arrive on a Poisson-ish fixed-rate schedule
  regardless of completions, the "heavy traffic" regime: offered load
  beyond capacity shows up as admission rejections, not unbounded queue
  growth.

Before any load runs, every distinct query in the mix is executed once
serially and its payload sha256 recorded; during the load phases every
result is checked against that baseline, so the benchmark doubles as
the cross-query isolation gate — one corrupted result fails the run.
Result caching is disabled throughout: every query exercises the full
engine path (a cache-hit latency distribution would only flatter the
numbers).

Results land in ``BENCH_serve.json`` at the repo root: per-concurrency
p50/p95/p99 + throughput (the saturation curve), the open-loop sweep,
and the corruption/verification tally.

Usage::

    python benchmarks/bench_serve_load.py              # 2^14 R-MAT
    python benchmarks/bench_serve_load.py --scale 10 --queries 60  # smoke
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import time

import numpy as np

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_common import machine_block, merge_payload  # noqa: E402

from repro.engine.config import EngineConfig  # noqa: E402
from repro.engine.gstore import GStoreEngine  # noqa: E402
from repro.errors import AdmissionError  # noqa: E402
from repro.format.tiles import TiledGraph  # noqa: E402
from repro.graphgen.rmat import rmat  # noqa: E402
from repro.serve import (  # noqa: E402
    BFSQuery,
    NeighborhoodQuery,
    PageRankTopKQuery,
    QueryService,
    ReachabilityQuery,
    ServiceConfig,
    SSSPQuery,
)

OUT_PATH = os.path.join(ROOT, "BENCH_serve.json")


def build_service(scale: int, workers: int, queue_depth: int):
    el = rmat(scale, edge_factor=16, seed=5)
    tg = TiledGraph.from_edge_list(el, tile_bits=10, group_q=8)
    # Semi-external budget: the streaming/caching memory is a fraction
    # of the graph, so queries really fetch tiles.
    cfg = EngineConfig(
        memory_bytes=max(tg.storage_bytes() // 4, 64 * 1024),
        segment_bytes=max(tg.storage_bytes() // 128, 16 * 1024),
    )
    engine = GStoreEngine(tg, cfg)
    service = QueryService(
        engine,
        ServiceConfig(workers=workers, queue_depth=queue_depth,
                      cache_entries=0),
    )
    return engine, service


def query_mix(n_vertices: int, seed: int = 17) -> list:
    """A deterministic mixed workload over all five query types."""
    rng = np.random.default_rng(seed)
    roots = rng.integers(0, n_vertices, size=32)
    mix: list = []
    for i, r in enumerate(roots):
        r = int(r)
        kind = i % 5
        if kind == 0:
            mix.append(BFSQuery(root=r))
        elif kind == 1:
            mix.append(SSSPQuery(root=r))
        elif kind == 2:
            mix.append(PageRankTopKQuery(k=10, max_iterations=8))
        elif kind == 3:
            mix.append(NeighborhoodQuery(vertex=r))
        else:
            mix.append(ReachabilityQuery(source=r, target=(r + 1) % n_vertices))
    return mix


def percentiles(latencies: "list[float]") -> dict:
    arr = np.asarray(latencies, dtype=np.float64)
    return {
        "n": int(arr.size),
        "p50_ms": float(np.percentile(arr, 50) * 1e3),
        "p95_ms": float(np.percentile(arr, 95) * 1e3),
        "p99_ms": float(np.percentile(arr, 99) * 1e3),
        "mean_ms": float(arr.mean() * 1e3),
    }


def closed_loop(service, mix, baselines, total: int, concurrency: int) -> dict:
    """``concurrency`` threads, each back-to-back until ``total`` queries."""
    latencies: "list[float]" = []
    corrupt = 0
    errors = 0
    counter = {"next": 0}
    lock = threading.Lock()

    def client():
        nonlocal corrupt, errors
        while True:
            with lock:
                i = counter["next"]
                if i >= total:
                    return
                counter["next"] = i + 1
            q = mix[i % len(mix)]
            t0 = time.perf_counter()
            try:
                result = service.execute(q)
            except Exception:
                with lock:
                    errors += 1
                continue
            dt = time.perf_counter() - t0
            with lock:
                latencies.append(dt)
                if result.sha256 != baselines[q]:
                    corrupt += 1

    t0 = time.perf_counter()
    threads = [threading.Thread(target=client) for _ in range(concurrency)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    out = percentiles(latencies)
    out.update(
        concurrency=concurrency,
        throughput_qps=len(latencies) / elapsed if elapsed else 0.0,
        elapsed_s=elapsed,
        corrupt=corrupt,
        errors=errors,
    )
    return out


def open_loop(service, mix, baselines, total: int, rate_qps: float) -> dict:
    """Fixed-rate arrivals: submissions do not wait for completions.

    Overload shows up as typed admission rejections (counted, not
    errors) — the service's bounded queue converts excess offered load
    into fast feedback instead of latency collapse.
    """
    latencies: "list[float]" = []
    corrupt = 0
    rejected = 0
    errors = 0
    lock = threading.Lock()
    interval = 1.0 / rate_qps
    pending = []

    def on_done(q, t0, future):
        nonlocal corrupt, errors
        try:
            result = future.result()
        except Exception:
            with lock:
                errors += 1
            return
        dt = time.perf_counter() - t0
        with lock:
            latencies.append(dt)
            if result.sha256 != baselines[q]:
                corrupt += 1

    start = time.perf_counter()
    for i in range(total):
        target = start + i * interval
        delay = target - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        q = mix[i % len(mix)]
        t0 = time.perf_counter()
        try:
            future = service.submit(q)
        except AdmissionError:
            rejected += 1
            continue
        future.add_done_callback(
            lambda f, q=q, t0=t0: on_done(q, t0, f)
        )
        pending.append(future)
    for f in pending:
        try:
            f.result()
        except Exception:
            pass
    elapsed = time.perf_counter() - start
    out = percentiles(latencies) if latencies else {"n": 0}
    out.update(
        offered_qps=rate_qps,
        completed_qps=len(latencies) / elapsed if elapsed else 0.0,
        rejected=rejected,
        errors=errors,
        corrupt=corrupt,
        elapsed_s=elapsed,
    )
    return out


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", type=int, default=14,
                    help="R-MAT scale (2^N vertices; default 14)")
    ap.add_argument("--queries", type=int, default=240,
                    help="total queries per closed-loop level (default 240)")
    ap.add_argument("--workers", type=int, default=4)
    ap.add_argument("--queue-depth", type=int, default=32)
    ap.add_argument("--concurrency", type=int, nargs="+",
                    default=[1, 2, 4, 8],
                    help="closed-loop client counts to sweep")
    ap.add_argument("--rates", type=float, nargs="+", default=None,
                    help="open-loop offered rates (qps); default derives "
                         "from the measured closed-loop capacity")
    ap.add_argument("--max-p99-ms", type=float, default=None,
                    help="fail if any closed-loop p99 exceeds this bound")
    args = ap.parse_args()

    print(f"building 2^{args.scale} R-MAT and service "
          f"({args.workers} workers, queue depth {args.queue_depth})")
    engine, service = build_service(
        args.scale, args.workers, args.queue_depth
    )
    mix = query_mix(engine.graph.n_vertices)

    # Serial baselines: the ground truth every concurrent result must
    # hash-match.  Runs at concurrency 1 through the same service path.
    print(f"serial baselines over {len(mix)} distinct queries ...")
    baselines = {}
    for q in mix:
        baselines[q] = service.execute(q).sha256

    closed = []
    for c in args.concurrency:
        r = closed_loop(service, mix, baselines, args.queries, c)
        closed.append(r)
        print(
            f"closed loop c={c:<3d} {r['throughput_qps']:8.1f} qps   "
            f"p50 {r['p50_ms']:7.1f} ms   p95 {r['p95_ms']:7.1f} ms   "
            f"p99 {r['p99_ms']:7.1f} ms   corrupt {r['corrupt']}"
        )

    capacity = max(r["throughput_qps"] for r in closed)
    rates = args.rates or [
        round(capacity * f, 2) for f in (0.5, 0.9, 1.5)
    ]
    opened = []
    for rate in rates:
        r = open_loop(service, mix, baselines, args.queries, rate)
        opened.append(r)
        print(
            f"open loop  λ={rate:8.1f} qps  completed "
            f"{r['completed_qps']:8.1f} qps   "
            f"p99 {r.get('p99_ms', float('nan')):7.1f} ms   "
            f"rejected {r['rejected']}   corrupt {r['corrupt']}"
        )

    total_queries = sum(r["n"] for r in closed) + sum(r["n"] for r in opened)
    total_corrupt = sum(r["corrupt"] for r in closed + opened)
    total_errors = sum(r["errors"] for r in closed + opened)
    print(
        f"total: {total_queries} queries, {total_corrupt} corrupted, "
        f"{total_errors} errors"
    )

    payload = {
        "benchmark": "serve_load",
        "machine": machine_block(workers=args.workers),
        "config": {
            "scale": args.scale,
            "workers": args.workers,
            "queue_depth": args.queue_depth,
            "queries_per_level": args.queries,
            "mix_size": len(mix),
            "fingerprint": service.fingerprint,
        },
        "saturation_curve": closed,
        "open_loop": opened,
        "verification": {
            "total_queries": total_queries,
            "corrupt": total_corrupt,
            "errors": total_errors,
        },
        "serve_counters": service.stats(),
    }
    merge_payload(OUT_PATH, payload)
    print(f"wrote {OUT_PATH}")

    service.close()
    engine.close()

    if total_corrupt:
        print("FAIL: cross-query result corruption detected", file=sys.stderr)
        return 1
    if total_errors:
        print("FAIL: queries errored under load", file=sys.stderr)
        return 1
    if args.max_p99_ms is not None:
        worst = max(r["p99_ms"] for r in closed)
        if worst > args.max_p99_ms:
            print(
                f"FAIL: closed-loop p99 {worst:.1f} ms exceeds bound "
                f"{args.max_p99_ms:.1f} ms",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
