"""Shared plumbing for the repo benchmarks.

Both benchmarks write into the same ``BENCH_pipeline.json`` at the repo
root — the overlap/selective runs own the ``results``/``selective``
sections and the shard-scaling run owns ``shard_scaling``.  For the
entries to stay comparable the file must carry exactly **one** machine /
execution-fingerprint block per run environment, emitted once per
invocation rather than once per benchmark mode; :func:`merge_payload`
enforces that by preserving the other benchmark's sections only when the
machine identity matches, and dropping them (stale, from some other
runner) when it does not.
"""

from __future__ import annotations

import json
import os
import platform

from repro.runtime.threads import execution_fingerprint

#: The machine-identity keys two payloads must agree on for their
#: sections to be comparable inside one ``BENCH_*.json`` file.
MACHINE_KEYS = (
    "platform", "python", "cpus", "cpus_logical", "cpus_available",
)


def machine_block(workers="auto", backend=None, shards=None) -> dict:
    """The single machine/fingerprint block a benchmark payload carries."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        **execution_fingerprint(
            workers=workers, backend=backend, shards=shards
        ),
    }


def merge_payload(path: str, payload: dict, preserve=()) -> dict:
    """Write ``payload`` to ``path``, keeping comparable foreign sections.

    ``preserve`` names top-level sections owned by *other* benchmarks
    (e.g. the shard-scaling run preserves the overlap run's ``results``).
    A preserved section survives only when the existing file's machine
    block matches this payload's on every :data:`MACHINE_KEYS` entry —
    results measured on a different machine are silently dropped rather
    than presented alongside incomparable numbers.
    """
    for key in preserve:
        payload.pop(key, None)
    if preserve and os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as fh:
                prior = json.load(fh)
        except (OSError, ValueError):
            prior = {}
        mine = payload.get("machine", {})
        theirs = prior.get("machine", {})
        if all(mine.get(k) == theirs.get(k) for k in MACHINE_KEYS):
            for key in preserve:
                if key in prior:
                    payload[key] = prior[key]
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return payload
