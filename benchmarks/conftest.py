"""Benchmark-suite configuration.

Benchmarks run at the ``small`` tier by default (override with
``REPRO_SCALE``).  Every benchmark writes its paper-style table into
``benchmarks/results/`` and prints it, so ``pytest benchmarks/
--benchmark-only`` leaves a full experiment record behind.
"""

from __future__ import annotations

import os

os.environ.setdefault("REPRO_SCALE", "small")

import pytest  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def record(name: str, table) -> None:
    """Persist and print an experiment table."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = table.render()
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    print("\n" + text)


@pytest.fixture(scope="session")
def gcache():
    from repro.bench.harness import graphs

    return graphs()
