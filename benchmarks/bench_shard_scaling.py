#!/usr/bin/env python
"""Shard-scaling benchmark: one coordinator + K persistent shard workers.

Runs R-MAT graphs through the engine at ``shards`` 1/2/4 in the
device-paced configuration (``realize_io=True``): every shard worker
sleeps its own batches' modeled service time on its private device lane,
so K workers genuinely overlap I/O pacing *and* fetch/decode/kernel
compute — the wall-clock counterpart of G-store's partitioned-grid
concurrent streaming (§III/§VI).  The coordinator still commits every
batch's simulated time to the one true clock in plan order, which is why
the run must (and does) report *identical* simulated statistics at every
shard count.

For every (graph, algorithm) the run asserts results are sha256-identical
and the simulated timeline identical across all shard counts before
recording anything.  Results land in the ``shard_scaling`` section of
``BENCH_pipeline.json`` (the overlap benchmark's sections are preserved
when the machine fingerprint matches).

``--min-shard-speedup`` is the CI gate, honest by construction: it is
enforced only when the runner actually has >= 2 CPUs available *and* the
sharded runs really executed sharded (no graceful fallback); otherwise
the measured numbers are recorded and the gate reports "reported only" —
the same pattern as the process backend's ``--min-process-speedup``.

Usage::

    python benchmarks/bench_shard_scaling.py                # full run
    python benchmarks/bench_shard_scaling.py --scales 12 \
        --repeats 2 --min-shard-speedup 1.05                # CI smoke
"""

from __future__ import annotations

import argparse
import hashlib
import math
import os
import sys
import time

import numpy as np

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_common import machine_block, merge_payload  # noqa: E402

from repro.algorithms.bfs import BFS  # noqa: E402
from repro.algorithms.pagerank import PageRank  # noqa: E402
from repro.engine.config import EngineConfig  # noqa: E402
from repro.engine.gstore import GStoreEngine  # noqa: E402
from repro.format.tiles import TiledGraph  # noqa: E402
from repro.graphgen.rmat import rmat  # noqa: E402
from repro.runtime.threads import available_cpus  # noqa: E402
from repro.storage.device import DeviceProfile  # noqa: E402

ALGOS = {
    "bfs": lambda: BFS(root=0, direction_optimizing=True),
    "pagerank": lambda: PageRank(max_iterations=5, tolerance=0.0),
}


def _sha(arr: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()


def _sim_signature(stats) -> tuple:
    """The simulated-run identity a shard count must not change."""
    return (
        stats.sim_elapsed,
        stats.io_time,
        stats.bytes_read,
        stats.tiles_fetched,
        stats.edges_processed,
        len(stats.iterations),
    )


def _signatures_match(a: tuple, b: tuple) -> bool:
    return all(
        math.isclose(x, y, rel_tol=1e-9, abs_tol=1e-12)
        if isinstance(x, float) else x == y
        for x, y in zip(a, b)
    )


def bench_graph(scale: int, args) -> dict:
    el = rmat(scale, edge_factor=args.edge_factor, seed=args.seed)
    tg = TiledGraph.from_edge_list(el, tile_bits=args.tile_bits, group_q=16)
    print(f"graph 2^{scale}: {tg!r}  payload {tg.storage_bytes()} bytes")
    section = {
        "scale": scale,
        "n_vertices": tg.n_vertices,
        "stored_edges": tg.n_edges,
        "payload_bytes": tg.storage_bytes(),
        "algos": {name: {} for name in args.algos},
    }
    refs: dict = {}
    for shards in args.shards:
        cfg = EngineConfig(
            memory_bytes=args.memory_kb * 1024,
            segment_bytes=args.segment_kb * 1024,
            realize_io=True,
            device_profile=DeviceProfile(read_bandwidth=args.bandwidth),
            workers="auto",
            shards=shards,
        )
        with GStoreEngine(tg, cfg) as engine:
            # Spawn the workers (and their graph unpickling) off the clock,
            # the way a long-lived deployment amortises startup.
            engine.warm_backend()
            for name in args.algos:
                factory = ALGOS[name]
                best = None
                algo = stats = None
                for _ in range(args.repeats):
                    algo = factory()
                    t0 = time.perf_counter()
                    stats = engine.run(algo)
                    wall = time.perf_counter() - t0
                    best = wall if best is None else min(best, wall)
                digest = _sha(algo.result())
                sig = _sim_signature(stats)
                if shards == 1:
                    refs[name] = (digest, sig)
                else:
                    ref_digest, ref_sig = refs[name]
                    assert digest == ref_digest, (
                        f"{name} at shards={shards} diverged from shards=1"
                    )
                    assert _signatures_match(sig, ref_sig), (
                        f"{name} at shards={shards} changed the simulated "
                        f"run: {sig} != {ref_sig}"
                    )
                resolved = stats.extra["execution"]["shards_resolved"]
                section["algos"][name][str(shards)] = {
                    "wall_seconds": best,
                    "shards_resolved": resolved,
                    "sim_elapsed": stats.sim_elapsed,
                    "sim_io_time": stats.io_time,
                    "bytes_read": stats.bytes_read,
                    "identical_to_unsharded": True,
                }
                print(f"  [2^{scale}] {name:9s} shards {shards} "
                      f"(resolved {resolved}): {best:7.3f}s wall")
    for name in args.algos:
        per = section["algos"][name]
        serial = per["1"]["wall_seconds"]
        for shards in args.shards:
            per[str(shards)]["speedup_vs_unsharded"] = (
                serial / per[str(shards)]["wall_seconds"]
            )
    return section


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scales", type=int, nargs="*", default=[18, 19],
                    help="log2 of |V| per graph (default: 18 and 19 — the "
                         "reference graph and one larger)")
    ap.add_argument("--edge-factor", type=int, default=8)
    ap.add_argument("--tile-bits", type=int, default=10)
    ap.add_argument("--seed", type=int, default=42)
    ap.add_argument("--repeats", type=int, default=2)
    ap.add_argument("--shards", type=int, nargs="*", default=[1, 2, 4])
    ap.add_argument("--memory-kb", type=int, default=4096)
    ap.add_argument("--segment-kb", type=int, default=1024)
    ap.add_argument("--bandwidth", type=float, default=100e6,
                    help="modeled device read bandwidth, bytes/s")
    ap.add_argument("--algos", nargs="*", default=sorted(ALGOS),
                    choices=sorted(ALGOS))
    ap.add_argument("--min-shard-speedup", type=float, default=None,
                    metavar="X",
                    help="fail unless every algorithm reaches this wall "
                         "speedup at 2 shards; enforced only on runners "
                         "with >= 2 CPUs where the runs actually executed "
                         "sharded (1-core numbers are recorded, not gated)")
    ap.add_argument("--out", default=os.path.join(ROOT, "BENCH_pipeline.json"))
    args = ap.parse_args(argv)

    if 1 not in args.shards:
        args.shards = [1, *args.shards]
    args.shards = sorted(set(args.shards))

    sections = [bench_graph(scale, args) for scale in args.scales]

    payload = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": machine_block(),
        "shard_scaling": {
            "config": {
                "memory_bytes": args.memory_kb * 1024,
                "segment_bytes": args.segment_kb * 1024,
                "read_bandwidth": args.bandwidth,
                "shards": args.shards,
                "repeats": args.repeats,
                "edge_factor": args.edge_factor,
                "tile_bits": args.tile_bits,
                "seed": args.seed,
            },
            "graphs": sections,
        },
    }
    payload = merge_payload(
        args.out, payload,
        preserve=("benchmark", "graph", "config", "results", "selective"),
    )
    print(f"wrote {args.out}")

    # The acceptance gate — only meaningful where sharding can possibly
    # win (>= 2 CPUs) and where it actually ran sharded.
    ok = True
    cpus = available_cpus()
    gate_shards = 2 if 2 in args.shards else max(args.shards)
    for section in sections:
        for name, per in section["algos"].items():
            entry = per[str(gate_shards)]
            sp = entry["speedup_vs_unsharded"]
            enforceable = (
                args.min_shard_speedup is not None
                and cpus >= 2
                and entry["shards_resolved"] == gate_shards
            )
            if enforceable:
                passed = sp >= args.min_shard_speedup
                status = "ok" if passed else "BELOW THRESHOLD"
                ok = ok and passed
            else:
                status = "reported only"
            print(f"  shard gate 2^{section['scale']} {name}: "
                  f"{sp:.2f}x at {gate_shards} shards [{status}]")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
