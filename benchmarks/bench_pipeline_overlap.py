#!/usr/bin/env python
"""Pipeline-overlap benchmark: serial fetch-then-compute vs real prefetch.

Runs the reference R-MAT graph through the G-Store engine at prefetch
depths 0 (strictly serial, the ablation baseline) and 1/2/4, in two modes:

* **device-paced** (``realize_io=True``, the headline numbers): each
  batch's simulated I/O service time is really slept on the servicing
  thread, so the wall clock behaves like the modeled device and the
  prefetcher's fetch/decode genuinely overlaps compute — the wall-clock
  counterpart of the paper's §VI-B slide overlap.  The device bandwidth is
  scaled down (default 100 MB/s) to keep the I/O:compute ratio of the
  paper's hardware at this reproduction's NumPy compute rate.
* **decode-overlap** (``realize_io=False``): only the real work (store
  read + zero-copy decode) overlaps compute; the win here scales with
  core count, since both sides release the GIL.

For every algorithm the run asserts results are *bit-identical* at every
depth before recording anything.  Results land in ``BENCH_pipeline.json``
at the repo root: serial vs overlapped wall seconds, speedups, and the
wall io-stall fraction (the Figure-15 I/O-bound quantity on the real
clock).

With ``--selective`` the benchmark additionally compares frontier-driven
selective execution (§V-B) against the dense fetch-everything ablation on
BFS: both runs must be bit-identical, the per-iteration moved/skipped
byte series lands in the JSON, and ``--min-bytes-saved`` gates the total
fraction of dense demand the selective plan skipped.

Usage::

    python benchmarks/bench_pipeline_overlap.py             # full run
    python benchmarks/bench_pipeline_overlap.py --scale 12  # CI smoke run
    python benchmarks/bench_pipeline_overlap.py --selective --min-bytes-saved 0.3
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_common import machine_block, merge_payload  # noqa: E402

from repro.algorithms.bfs import BFS  # noqa: E402
from repro.algorithms.pagerank import PageRank  # noqa: E402
from repro.engine.config import EngineConfig  # noqa: E402
from repro.engine.gstore import GStoreEngine  # noqa: E402
from repro.format.tiles import TiledGraph  # noqa: E402
from repro.graphgen.rmat import rmat  # noqa: E402
from repro.storage.device import DeviceProfile  # noqa: E402

ALGOS = {
    "pagerank": lambda: PageRank(max_iterations=5, tolerance=0.0),
    "bfs": lambda: BFS(root=0),
}

MODES = [
    ("device-paced", True),
    ("decode-overlap", False),
]


def run_once(tg, factory, depth, realize, args, selective=True):
    cfg = EngineConfig(
        memory_bytes=args.memory_kb * 1024,
        segment_bytes=args.segment_kb * 1024,
        prefetch_depth=depth,
        realize_io=realize,
        device_profile=DeviceProfile(read_bandwidth=args.bandwidth),
        workers="auto",
        selective=selective,
    )
    with GStoreEngine(tg, cfg) as engine:
        algo = factory()
        t0 = time.perf_counter()
        stats = engine.run(algo)
        wall = time.perf_counter() - t0
    return wall, algo.result().copy(), stats


def run_depth(tg, factory, depth, realize, args):
    """Best-of-N wall time; returns (wall, result, last stats)."""
    best = None
    result = None
    stats = None
    for _ in range(args.repeats):
        wall, result, stats = run_once(tg, factory, depth, realize, args)
        best = wall if best is None else min(best, wall)
    return best, result, stats


def run_selective(el, args):
    """Dense vs frontier-driven BFS at the selective tile granularity.

    Returns the JSON section: graph parameters, per-iteration series of
    moved vs skipped bytes for the selective run, totals for both modes,
    and the fraction of the dense demand the selective plan never read.
    Tiles are rebuilt at ``--selective-tile-bits`` (finer rows than the
    overlap runs) because row-granular frontiers need enough rows to
    collapse onto — the granularity is recorded in the output.
    """
    tg = TiledGraph.from_edge_list(
        el, tile_bits=args.selective_tile_bits, group_q=16
    )
    print(f"selective comparison: {tg!r}")
    section = {
        "graph": {
            "scale": args.scale,
            "tile_bits": args.selective_tile_bits,
            "n_tiles": tg.n_tiles,
            "payload_bytes": tg.storage_bytes(),
        },
        "algos": {},
    }
    depth = max(args.depths)
    for name in ("bfs",):
        factory = ALGOS[name]
        _, dense_result, dense_stats = run_once(
            tg, factory, depth, False, args, selective=False
        )
        _, sel_result, sel_stats = run_once(
            tg, factory, depth, False, args, selective=True
        )
        assert np.array_equal(dense_result, sel_result), (
            f"selective {name} diverged from dense"
        )
        dense_moved = dense_stats.bytes_read + dense_stats.bytes_from_cache
        sel_moved = sel_stats.bytes_read + sel_stats.bytes_from_cache
        fraction = sel_stats.bytes_skipped_fraction()
        section["algos"][name] = {
            "iterations": [
                {
                    "iteration": it.iteration,
                    "bytes_read": it.bytes_read,
                    "bytes_from_cache": it.bytes_from_cache,
                    "bytes_skipped": it.bytes_skipped,
                    "tiles_skipped": it.tiles_skipped,
                }
                for it in sel_stats.iterations
            ],
            "dense_bytes_moved": dense_moved,
            "selective_bytes_moved": sel_moved,
            "bytes_skipped": sel_stats.bytes_skipped,
            "tiles_skipped": sel_stats.tiles_skipped,
            "bytes_saved_fraction": fraction,
            "identical_to_dense": True,
        }
        print(f"  [selective] {name:9s}: dense {dense_moved} B -> "
              f"selective {sel_moved} B moved, "
              f"{fraction:6.1%} of demand skipped")
    return section


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", type=int, default=18, help="log2 of |V| (default 18)")
    ap.add_argument("--edge-factor", type=int, default=8)
    ap.add_argument("--tile-bits", type=int, default=10)
    ap.add_argument("--seed", type=int, default=42)
    ap.add_argument("--repeats", type=int, default=2)
    ap.add_argument("--depths", type=int, nargs="*", default=[0, 1, 2, 4])
    # Budget small enough that the reference graph genuinely streams every
    # iteration (the payload does not fit the pool).
    ap.add_argument("--memory-kb", type=int, default=4096)
    ap.add_argument("--segment-kb", type=int, default=1024)
    # Scaled device: NumPy computes ~10x slower than the paper's C++, so a
    # proportionally slower device preserves the paper's I/O:compute ratio.
    ap.add_argument("--bandwidth", type=float, default=100e6,
                    help="modeled device read bandwidth, bytes/s")
    ap.add_argument("--algos", nargs="*", default=sorted(ALGOS),
                    choices=sorted(ALGOS))
    ap.add_argument("--selective", action="store_true",
                    help="also compare frontier-driven selective BFS "
                         "against the dense ablation and record the "
                         "per-iteration bytes-skipped series")
    ap.add_argument("--selective-tile-bits", type=int, default=9,
                    help="tile granularity for the selective comparison "
                         "(finer rows than the overlap runs so frontiers "
                         "can collapse below row granularity)")
    ap.add_argument("--min-bytes-saved", type=float, default=None,
                    metavar="FRACTION",
                    help="with --selective, fail unless selective BFS "
                         "skips at least this fraction of the dense "
                         "byte demand (e.g. 0.3)")
    ap.add_argument("--out", default=os.path.join(ROOT, "BENCH_pipeline.json"))
    ap.add_argument("--trace", default=None, metavar="TRACE_JSON",
                    help="after the timed runs, redo one device-paced "
                         "overlapped run with repro.obs tracing on and "
                         "write a Chrome trace_event JSON here")
    args = ap.parse_args(argv)

    if 0 not in args.depths:
        args.depths = [0, *args.depths]

    print(f"building R-MAT graph: 2^{args.scale} vertices, "
          f"edge_factor={args.edge_factor}, tile_bits={args.tile_bits} ...")
    el = rmat(args.scale, edge_factor=args.edge_factor, seed=args.seed)
    tg = TiledGraph.from_edge_list(
        el, tile_bits=args.tile_bits, group_q=16
    )
    print(f"  {tg!r}  payload {tg.storage_bytes()} bytes")

    results: dict = {}
    for mode_name, realize in MODES:
        results[mode_name] = {}
        for name in args.algos:
            factory = ALGOS[name]
            per_depth = {}
            ref_result = None
            for depth in args.depths:
                wall, result, stats = run_depth(tg, factory, depth, realize, args)
                if depth == 0:
                    ref_result = result
                else:
                    assert np.array_equal(result, ref_result), (
                        f"{name} at depth {depth} diverged from serial"
                    )
                w = stats.extra["pipeline_wall"]
                per_depth[str(depth)] = {
                    "wall_seconds": wall,
                    "sim_elapsed": stats.sim_elapsed,
                    "sim_io_time": stats.io_time,
                    "wall_io_busy": w["io_busy"],
                    "wall_compute_busy": w["compute_busy"],
                    "wall_io_stall": w["io_stall"],
                    "wall_io_stall_fraction": w["io_bound_fraction"],
                    "batches": w["batches"],
                    "batches_prefetched": w["prefetched"],
                    "bytes_read": stats.bytes_read,
                    "identical_to_serial": True,
                }
                print(f"  [{mode_name}] {name:9s} depth {depth}: "
                      f"{wall:7.3f}s wall, stall "
                      f"{w['io_bound_fraction']:6.1%}")
            serial = per_depth["0"]["wall_seconds"]
            for depth in args.depths:
                per_depth[str(depth)]["speedup_vs_serial"] = (
                    serial / per_depth[str(depth)]["wall_seconds"]
                )
            best = max(
                (d for d in args.depths if d > 0),
                key=lambda d: per_depth[str(d)]["speedup_vs_serial"],
                default=None,
            )
            if best is not None:
                sp = per_depth[str(best)]["speedup_vs_serial"]
                print(f"  [{mode_name}] {name:9s} best overlap: depth {best} "
                      f"-> {sp:.2f}x vs serial")
            results[mode_name][name] = per_depth

    payload = {
        "benchmark": "pipeline_overlap",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        # One machine/fingerprint block per invocation (not per mode):
        # every mode above ran in this same environment, and the shard
        # benchmark merging into the same file checks against this block.
        "machine": machine_block(),
        "graph": {
            "scale": args.scale,
            "n_vertices": tg.n_vertices,
            "stored_edges": tg.n_edges,
            "edge_factor": args.edge_factor,
            "tile_bits": args.tile_bits,
            "seed": args.seed,
            "payload_bytes": tg.storage_bytes(),
        },
        "config": {
            "memory_bytes": args.memory_kb * 1024,
            "segment_bytes": args.segment_kb * 1024,
            "read_bandwidth": args.bandwidth,
            "depths": args.depths,
            "repeats": args.repeats,
        },
        "results": results,
    }
    if args.selective:
        payload["selective"] = run_selective(el, args)
    payload = merge_payload(args.out, payload, preserve=("shard_scaling",))
    print(f"wrote {args.out}")

    if args.trace:
        # One extra traced run (not timed — tracing is opt-in precisely so
        # the measured runs stay untouched) for the Perfetto overlap view.
        from repro.obs import write_chrome

        depth = max(args.depths)
        name = args.algos[0]
        cfg = EngineConfig(
            memory_bytes=args.memory_kb * 1024,
            segment_bytes=args.segment_kb * 1024,
            prefetch_depth=depth,
            realize_io=True,
            device_profile=DeviceProfile(read_bandwidth=args.bandwidth),
            workers="auto",
            trace=True,
        )
        with GStoreEngine(tg, cfg) as engine:
            engine.run(ALGOS[name]())
            write_chrome(
                engine.tracer.records(), args.trace,
                counters=engine.tracer.registry.as_dict(),
            )
        print(f"wrote trace of {name} at depth {depth} to {args.trace}")

    # The acceptance gate: with prefetch_depth >= 1 the device-paced wall
    # time must improve on the serial baseline.
    ok = True
    for name, per_depth in results["device-paced"].items():
        best = max(
            per_depth[str(d)]["speedup_vs_serial"]
            for d in args.depths if d > 0
        )
        status = "ok" if best > 1.0 else "NO IMPROVEMENT"
        print(f"  overlap gate {name}: best speedup {best:.2f}x [{status}]")
        ok = ok and best > 1.0
    if args.selective and args.min_bytes_saved is not None:
        frac = payload["selective"]["algos"]["bfs"]["bytes_saved_fraction"]
        passed = frac >= args.min_bytes_saved
        status = "ok" if passed else "BELOW THRESHOLD"
        print(f"  selective gate bfs: {frac:.1%} skipped "
              f"(need >= {args.min_bytes_saved:.0%}) [{status}]")
        ok = ok and passed
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
