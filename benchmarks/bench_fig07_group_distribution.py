"""Figure 7: per-physical-group edge counts of the Twitter stand-in."""

from conftest import record

from repro.bench.experiments import fig7_group_distribution


def test_fig7_group_spread(benchmark):
    tbl, data = benchmark.pedantic(
        fig7_group_distribution, rounds=1, iterations=1
    )
    record("fig07_group_distribution", tbl)
    counts = data["counts_sorted"]
    benchmark.extra_info["groups"] = int(counts.shape[0])
    benchmark.extra_info["largest"] = int(counts[0])
    benchmark.extra_info["smallest"] = int(counts[-1])
    # Paper: 364,227 edges in the smallest group, >1B in the largest —
    # a spread of several orders of magnitude.
    assert counts[0] > 50 * max(1, counts[-1])
