"""Table III: BFS / PageRank / WCC on the largest local graphs.

The paper runs trillion-edge graphs in tens of minutes on 8 SSDs; the
shape reproduced here is the per-algorithm runtime ordering (WCC fastest,
PageRank slowest) and the BFS MTEPS throughput metric.
"""

from conftest import record

from repro.bench.experiments import table3_large_graphs


def test_table3_trillion_edge_standins(benchmark):
    tbl, data = benchmark.pedantic(
        table3_large_graphs, rounds=1, iterations=1
    )
    record("table3_large_graphs", tbl)
    for name, row in data.items():
        benchmark.extra_info[f"{name}_bfs_s"] = round(row["bfs"].sim_elapsed, 4)
        benchmark.extra_info[f"{name}_mteps"] = round(row["bfs"].mteps(), 1)
        # Paper Table III ordering: WCC < BFS < PageRank runtime.
        assert row["cc"].sim_elapsed < row["pagerank"].sim_elapsed
        assert row["bfs"].mteps() > 0
