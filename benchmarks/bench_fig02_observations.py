"""Figure 2: the three observations motivating G-Store's design."""

from conftest import record

from repro.bench.experiments import (
    fig2a_tuple_size,
    fig2b_partitions,
    fig2c_streaming_memory,
)


def test_fig2a_tuple_size(benchmark):
    """(a) halving the X-Stream edge tuple ~doubles PageRank speed."""
    tbl, times = benchmark.pedantic(fig2a_tuple_size, rounds=1, iterations=1)
    record("fig02a_tuple_size", tbl)
    speedup = times[16] / times[8]
    benchmark.extra_info["speedup_16_to_8"] = round(speedup, 2)
    assert 1.6 < speedup < 2.3  # paper: ~2x


def test_fig2b_metadata_localisation(benchmark):
    """(b) 2-D partitioning localises metadata; real wall-clock sweep."""
    tbl, times = benchmark.pedantic(fig2b_partitions, rounds=1, iterations=1)
    record("fig02b_partitions", tbl)
    parts = sorted(times)
    best = min(times, key=times.get)
    benchmark.extra_info["best_partitions"] = best
    benchmark.extra_info["best_speedup"] = round(times[parts[0]] / times[best], 2)
    # An interior partition count must beat no partitioning.
    assert times[best] < times[parts[0]]
    assert parts[0] < best


def test_fig2c_streaming_memory_flat(benchmark):
    """(c) streaming-buffer size barely matters (the paper's flat line)."""
    tbl, times = benchmark.pedantic(
        fig2c_streaming_memory, rounds=1, iterations=1
    )
    record("fig02c_streaming_memory", tbl)
    vals = list(times.values())
    spread = max(vals) / min(vals)
    benchmark.extra_info["max_over_min"] = round(spread, 3)
    assert spread < 1.25
