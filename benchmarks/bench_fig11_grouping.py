"""Figure 11: in-memory speedup from physical grouping."""

from conftest import record

from repro.bench.experiments import fig11_12_grouping


def test_fig11_grouping_speedup(benchmark):
    tbl, results = benchmark.pedantic(fig11_12_grouping, rounds=1, iterations=1)
    record("fig11_grouping_speedup", tbl)
    qs = sorted(results)
    costs = {q: results[q]["cost"] for q in qs}
    best = min(costs, key=costs.get)
    worst = max(costs, key=costs.get)
    benchmark.extra_info["best_q"] = best
    benchmark.extra_info["speedup_best_over_worst"] = round(
        costs[worst] / costs[best], 2
    )
    # Paper: 256x256 grouping is 57% faster than 32x32 — an interior
    # optimum.  Assert the best grouping strictly beats both extremes.
    assert costs[best] < costs[qs[0]]
    assert costs[best] < costs[qs[-1]]
