"""Extension benchmarks: the paper's future-work features, implemented.

* tile compression beyond SNB (§VIII: "Compression can be applied to the
  data present in tiles … which we leave as future work");
* asynchronous BFS (§II-B, citing Pearce et al. [26]);
* tiered SSD+HDD storage (§IX: "extend G-Store … on a tiered storage").
"""

from conftest import record

from repro.bench.experiments import (
    ext_async_bfs,
    ext_tile_compression,
    ext_tiered_storage,
)


def test_ext_tile_compression(benchmark):
    tbl, data = benchmark.pedantic(ext_tile_compression, rounds=1, iterations=1)
    record("ext_tile_compression", tbl)
    for name, rep in data.items():
        benchmark.extra_info[f"{name}_saving"] = round(rep["extra_saving"], 2)
        # Delta+varint must shrink SNB tiles further on realistic graphs.
        assert rep["extra_saving"] > 1.3


def test_ext_async_bfs(benchmark):
    import numpy as np

    tbl, data = benchmark.pedantic(ext_async_bfs, rounds=1, iterations=1)
    record("ext_async_bfs", tbl)
    benchmark.extra_info["sync_iters"] = data["sync"].n_iterations
    benchmark.extra_info["async_iters"] = data["async"].n_iterations
    # Fewer (or equal) sweeps, strictly fewer bytes demanded from disk.
    assert data["async"].n_iterations <= data["sync"].n_iterations
    assert data["async"].bytes_read <= data["sync"].bytes_read


def test_ext_tiered_storage(benchmark):
    tbl, data = benchmark.pedantic(ext_tiered_storage, rounds=1, iterations=1)
    record("ext_tiered_storage", tbl)
    benchmark.extra_info["tiered_vs_hdd"] = round(data["hdd"] / data["tiered"], 2)
    # Sweep cost ordering: SSD < tiered < HDD.
    assert data["ssd"] < data["tiered"] < data["hdd"]
    # And the hot plan concentrates bytes into few groups.
    assert data["plan"]["edge_coverage"] >= data["plan"]["group_fraction"]


def test_ext_kcore(benchmark):
    from repro.bench.experiments import ext_kcore

    tbl, data = benchmark.pedantic(ext_kcore, rounds=1, iterations=1)
    record("ext_kcore", tbl)
    sizes = [data[k]["size"] for k in sorted(data)]
    for k in sorted(data):
        benchmark.extra_info[f"core_{k}"] = data[k]["size"]
    # Cores nest: larger k, smaller core; all non-trivial on a social graph.
    assert all(a >= b for a, b in zip(sizes, sizes[1:]))
    assert sizes[0] > 0


def test_ext_scc(benchmark):
    from repro.bench.experiments import ext_scc

    tbl, data = benchmark.pedantic(ext_scc, rounds=1, iterations=1)
    record("ext_scc", tbl)
    res = data["result"]
    benchmark.extra_info["components"] = res.n_components
    benchmark.extra_info["pivot_rounds"] = res.pivot_rounds
    # Every vertex labelled; trimming does the heavy lifting on a graph
    # with few cycles.
    assert int(res.component_sizes().sum()) == res.labels.shape[0]
    assert res.trimmed > 0


def test_ext_multi_bfs(benchmark):
    from repro.bench.experiments import ext_multi_bfs

    tbl, data = benchmark.pedantic(ext_multi_bfs, rounds=1, iterations=1)
    record("ext_multi_bfs", tbl)
    benchmark.extra_info["demand_saving"] = round(
        data["single_demand"] / max(data["multi_demand"], 1), 2
    )
    # The shared sweep demands far less data than k separate traversals.
    assert data["multi_demand"] < 0.5 * data["single_demand"]


def test_ext_direction_optimizing_bfs(benchmark):
    from repro.bench.experiments import ext_direction_optimizing_bfs

    tbl, data = benchmark.pedantic(
        ext_direction_optimizing_bfs, rounds=1, iterations=1
    )
    record("ext_direction_opt_bfs", tbl)

    def demand(st):
        return st.bytes_read + st.bytes_from_cache

    def tiles(st):
        return st.tiles_fetched + st.tiles_from_cache

    benchmark.extra_info["lattice_tile_saving"] = round(
        tiles(data["lattice_plain"]) / max(tiles(data["lattice_opt"]), 1), 2
    )
    # High-diameter workload: the AND-predicate prunes a large fraction
    # of tile visits (the pruned boundary tiles are small, so the *byte*
    # saving is modest — recorded honestly in EXPERIMENTS.md).
    assert tiles(data["lattice_opt"]) < 0.8 * tiles(data["lattice_plain"])
    assert demand(data["lattice_opt"]) <= demand(data["lattice_plain"])
    # Power-law workload: never worse (and honestly, barely better —
    # every 2**tile_bits range keeps an unvisited vertex almost to the
    # end, so range-granular direction optimisation cannot engage).
    assert demand(data["opt"]) <= demand(data["plain"])
