"""Figure 9 + §VII-B: G-Store vs FlashGraph and X-Stream."""

from conftest import record

from repro.bench.experiments import fig9_vs_flashgraph, vs_xstream


def test_fig9_vs_flashgraph(benchmark):
    """Per-graph/per-algorithm speedups over the FlashGraph baseline."""
    tbl, data = benchmark.pedantic(fig9_vs_flashgraph, rounds=1, iterations=1)
    record("fig09_vs_flashgraph", tbl)
    for key, speeds in data.items():
        for algo, s in speeds.items():
            benchmark.extra_info[f"{key}_{algo}"] = round(s, 2)
    # Paper: ~2x PageRank, ~1.5-2x CC, ~1.4x BFS on undirected graphs;
    # directed BFS/PR slightly lose (no symmetry saving there).
    und = [k for k in data if k.endswith("-u")]
    assert und, "undirected variants must be present"
    for key in und:
        assert data[key]["pagerank"] > 1.3
        assert data[key]["cc"] > 1.2
        assert data[key]["bfs"] > 0.9


def test_vs_xstream(benchmark):
    """§VII-B text: G-Store beats X-Stream by an order of magnitude."""
    tbl, data = benchmark.pedantic(vs_xstream, rounds=1, iterations=1)
    record("vs_xstream", tbl)
    for key, speeds in data.items():
        for algo, s in speeds.items():
            benchmark.extra_info[f"{key}_{algo}"] = round(s, 2)
    kron = data["kron-small-16"]
    # Paper: 17x BFS / 21x PR / 32x CC on Kron-28-16.  The ratio grows
    # with graph-to-memory ratio; at this tier we assert solid wins with
    # PageRank the largest (it pays X-Stream's update streams every
    # iteration).
    assert kron["bfs"] > 3
    assert kron["pagerank"] > 8
    assert kron["cc"] > 3
    assert data["twitter-small"]["pagerank"] > 2
