"""Figure 14: effect of the streaming/caching memory size."""

from conftest import record

from repro.bench.experiments import fig14_cache_size


def test_fig14_cache_size(benchmark):
    tbl, data = benchmark.pedantic(fig14_cache_size, rounds=1, iterations=1)
    record("fig14_cache_size", tbl)
    for (name, algo), times in data.items():
        speed = times[0] / times[-1]
        benchmark.extra_info[f"{name}_{algo}"] = round(speed, 2)
        # More cache never hurts and eventually helps (paper: 30-46%
        # improvement from 1GB to 8GB).
        assert times[-1] <= times[0] * 1.05
    kron_pr = data[("kron-small-16", "pagerank")]
    assert kron_pr[0] / kron_pr[-1] > 1.2
