"""Figure 15: scalability over the RAID-0 SSD array."""

from conftest import record

from repro.bench.experiments import fig15_ssd_scaling


def test_fig15_ssd_scaling(benchmark):
    tbl, data = benchmark.pedantic(fig15_ssd_scaling, rounds=1, iterations=1)
    record("fig15_ssd_scaling", tbl)
    for algo, times in data.items():
        speed8 = times[0] / times[-1]
        benchmark.extra_info[f"{algo}_8ssd"] = round(speed8, 2)
    bfs = data["bfs"]
    pr = data["pagerank"]
    # Paper: close-to-ideal scaling to 4 SSDs, ~6x at 8; PageRank
    # saturates the CPU before the array does.
    assert bfs[0] / bfs[1] > 1.4  # 2 SSDs help a lot
    assert bfs[0] / bfs[2] > 2.0  # 4 SSDs
    # PageRank's 8-SSD gain over 4 SSDs is limited by compute.
    pr_gain_8_over_4 = pr[2] / pr[3]
    bfs_gain_8_over_4 = bfs[2] / bfs[3]
    assert pr_gain_8_over_4 <= bfs_gain_8_over_4 + 0.05
