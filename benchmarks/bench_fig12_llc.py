"""Figure 12: LLC operations and misses across grouping sizes."""

from conftest import record

from repro.bench.experiments import fig11_12_grouping


def test_fig12_llc_misses(benchmark):
    tbl, results = benchmark.pedantic(fig11_12_grouping, rounds=1, iterations=1)
    record("fig12_llc_misses", tbl)
    qs = sorted(results)
    ops = [results[q]["operations"] for q in qs]
    misses = {q: results[q]["misses"] for q in qs}
    best = min(misses, key=misses.get)
    reduction = 1 - misses[best] / max(misses.values())
    benchmark.extra_info["miss_reduction"] = round(reduction, 3)
    # Transactions are grouping-invariant (same trace, Figure 12's flat
    # "ops" bars); misses show the interior minimum.
    assert len(set(ops)) == 1
    # Paper: up to 35% fewer misses at the best grouping.
    assert reduction > 0.15
    assert misses[best] <= misses[qs[0]]
    assert misses[best] <= misses[qs[-1]]
