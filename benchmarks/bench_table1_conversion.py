"""Table I: conversion time to CSR vs the G-Store tile format."""

from conftest import record

from repro.bench.experiments import table1_conversion
from repro.bench.harness import graphs
from repro.format.convert import convert_to_csr, convert_to_tiles
from repro.graphgen.datasets import get_spec


def test_table1_conversion_report(benchmark):
    """Regenerate Table I and benchmark the tile conversion itself."""
    tbl, data = table1_conversion()
    record("table1_conversion", tbl)
    el = graphs().edge_list("kron-small-16")
    tb, q = get_spec("kron-small-16").geometry()
    benchmark(lambda: convert_to_tiles(el, tile_bits=tb, group_q=q))
    for name, (csr_s, gs_s) in data.items():
        benchmark.extra_info[f"{name}_csr_s"] = round(csr_s, 4)
        benchmark.extra_info[f"{name}_gstore_s"] = round(gs_s, 4)
    assert all(t > 0 for pair in data.values() for t in pair)


def test_table1_csr_conversion_kernel(benchmark):
    """Micro-benchmark of the CSR conversion (the Table I comparator)."""
    el = graphs().edge_list("kron-small-16")
    csr, _ = benchmark(lambda: convert_to_csr(el))
    assert csr.n_edges == 2 * el.canonicalized().n_edges
