"""Extra ablations from DESIGN.md: AIO batching, pipeline overlap, and
the compressed degree array."""

from conftest import record

from repro.bench.experiments import ablation_degree_compression, ablation_io_modes


def test_ablation_io_modes(benchmark):
    """§V-B / §VI-B: batched AIO + overlap is the fastest configuration."""
    tbl, times = benchmark.pedantic(ablation_io_modes, rounds=1, iterations=1)
    record("ablation_io_modes", tbl)
    for label, t in times.items():
        benchmark.extra_info[label.replace(" ", "_")] = round(t, 4)
    assert times["aio+overlap"] == min(times.values())
    assert times["sync, no overlap"] >= times["aio+overlap"]


def test_ablation_degree_compression(benchmark):
    """§IV-C: the two-byte degree array halves the degree footprint."""
    tbl, data = benchmark.pedantic(
        ablation_degree_compression, rounds=1, iterations=1
    )
    record("ablation_degree_compression", tbl)
    saving = data["plain"] / data["compressed"]
    benchmark.extra_info["saving"] = round(saving, 2)
    assert saving > 1.8  # paper: 4GB -> 2GB for Kron-30-16
    assert data["overflow_entries"] < 32768
