"""Figure 13: slide-cache-rewind vs the two-segment base policy."""

from conftest import record

from repro.bench.experiments import fig13_scr


def test_fig13_scr_speedup(benchmark):
    tbl, data = benchmark.pedantic(fig13_scr, rounds=1, iterations=1)
    record("fig13_scr", tbl)
    for algo, row in data.items():
        benchmark.extra_info[f"{algo}_speedup"] = round(row["speedup"], 2)
    # Paper: >60% improvement for BFS, >35% for PageRank and WCC.  The
    # caching effect is stronger at our scale (the whole reused working
    # set fits the pool), so assert lower bounds plus the BFS > others
    # ordering the paper reports.
    assert data["bfs"]["speedup"] > 1.35
    assert data["pagerank"]["speedup"] > 1.2
    assert data["cc"]["speedup"] > 1.2
    # The win must come from avoided reads, not timing artefacts.
    for algo in data:
        assert data[algo]["bytes_scr"] < data[algo]["bytes_base"]
