#!/usr/bin/env python3
"""Quickstart: build a tiled graph and traverse it with G-Store.

Generates a Graph500 Kronecker graph, converts it to the space-efficient
tile format (symmetry + SNB), and runs BFS through the semi-external
engine with slide-cache-rewind memory management.

Run:  python examples/quickstart.py
"""

from repro import (
    BFS,
    EngineConfig,
    GStoreEngine,
    TiledGraph,
    kronecker,
)


def main() -> None:
    # 1. Generate a Kronecker graph (the paper's Kron-<scale>-<ef> family).
    edges = kronecker(scale=16, edge_factor=16, seed=1)
    print(f"generated {edges}")

    # 2. Convert to the G-Store tile format: only the upper triangle is
    #    stored and every tuple keeps just its in-tile local IDs.
    graph = TiledGraph.from_edge_list(edges, tile_bits=10, group_q=8)
    traditional = edges.canonicalized().n_edges * 2 * 8  # both dirs, 8B
    print(
        f"tile store: {graph.storage_bytes():,} bytes "
        f"({traditional / graph.storage_bytes():.0f}x smaller than the "
        f"traditional edge list)"
    )

    # 3. Run BFS semi-externally: one quarter of the traditional graph
    #    size as streaming/caching memory, one simulated SSD.
    config = EngineConfig(
        memory_bytes=traditional // 4,
        segment_bytes=max(traditional // 128, 64 * 1024),
    )
    engine = GStoreEngine(graph, config)
    bfs = BFS(root=0)
    stats = engine.run(bfs)

    print()
    print(stats.summary())
    print()
    depth = bfs.result()
    print(f"visited {bfs.visited_count():,} of {graph.n_vertices:,} vertices")
    print(f"BFS tree depth: {int(depth[depth != depth.max()].max())}")


if __name__ == "__main__":
    main()
