#!/usr/bin/env python3
"""Head-to-head: G-Store vs X-Stream vs FlashGraph vs GridGraph.

Runs BFS, PageRank, and connected components on the same Kronecker graph
through all four engines over identical simulated hardware, verifies the
results agree bit-for-bit, and prints the §VII-B-style speedup table.
Also shows two engine variants: asynchronous BFS and tiered SSD+HDD
storage.

Run:  python examples/engine_comparison.py
"""

import numpy as np

from repro import (
    BFS,
    AsyncBFS,
    ConnectedComponents,
    EngineConfig,
    FlashGraphEngine,
    GridGraphEngine,
    GStoreEngine,
    PageRank,
    TiledGraph,
    XStreamEngine,
    kronecker,
)
from repro.baselines.common import BaselineConfig
from repro.storage.device import DeviceProfile
from repro.util.humanize import fmt_bytes, fmt_time

PR_ITERS = 8

#: Device latency scaled with the ~1000x graph downscaling (see
#: DESIGN.md) so request-batching effects keep their real proportions.
SCALED = DeviceProfile(latency=2e-6)


def main() -> None:
    edges = kronecker(scale=15, edge_factor=16, seed=2)
    graph = TiledGraph.from_edge_list(edges, tile_bits=10, group_q=8)
    print(f"{edges}\n")

    traditional = graph.info.n_input_edges * 8
    memory = traditional // 8  # the paper's semi-external regime
    segment = max(traditional // 256, 32 * 1024)
    gcfg = EngineConfig(
        memory_bytes=memory, segment_bytes=segment, device_profile=SCALED
    )
    bcfg = BaselineConfig(
        memory_bytes=memory, segment_bytes=segment, device_profile=SCALED
    )

    # --- G-Store reference runs ---------------------------------------
    gstore = {}
    for label, algo in [
        ("bfs", BFS(root=0)),
        ("pagerank", PageRank(max_iterations=PR_ITERS, tolerance=0.0)),
        ("cc", ConnectedComponents()),
    ]:
        stats = GStoreEngine(graph, gcfg).run(algo)
        gstore[label] = (algo.result(), stats)

    # --- Baselines ------------------------------------------------------
    rows = []
    for engine_name, factory in [
        ("xstream", lambda: XStreamEngine(edges, bcfg)),
        ("flashgraph", lambda: FlashGraphEngine(edges, bcfg)),
        ("gridgraph", lambda: GridGraphEngine(edges, bcfg, n_parts=16)),
    ]:
        eng = factory()
        speeds = {}
        for label in ["bfs", "pagerank", "cc"]:
            if label == "bfs":
                result, stats = eng.run_bfs(0)
            elif label == "pagerank":
                result, stats = eng.run_pagerank(
                    max_iterations=PR_ITERS, tolerance=0.0
                )
            else:
                result, stats = eng.run_cc()
            ref_result, ref_stats = gstore[label]
            if label == "pagerank":
                assert np.allclose(result, ref_result, atol=1e-10)
            else:
                assert np.array_equal(result, ref_result)
            speeds[label] = stats.sim_elapsed / ref_stats.sim_elapsed
        rows.append((engine_name, speeds))

    print("results verified identical across engines\n")
    print(f"{'engine':<12} {'BFS':>8} {'PageRank':>10} {'CC/WCC':>8}   (G-Store speedup)")
    for name, speeds in rows:
        print(
            f"{name:<12} {speeds['bfs']:>7.1f}x {speeds['pagerank']:>9.1f}x "
            f"{speeds['cc']:>7.1f}x"
        )

    # --- Variants -------------------------------------------------------
    print("\nvariants:")
    sync_stats = gstore["bfs"][1]
    asyn = AsyncBFS(root=0)
    asyn_stats = GStoreEngine(graph, gcfg).run(asyn)
    assert np.array_equal(asyn.result(), gstore["bfs"][0])
    print(
        f"  async BFS: {asyn_stats.n_iterations} sweeps vs "
        f"{sync_stats.n_iterations} (sim {fmt_time(asyn_stats.sim_elapsed)} vs "
        f"{fmt_time(sync_stats.sim_elapsed)})"
    )

    tiered_cfg = EngineConfig(
        memory_bytes=memory,
        segment_bytes=segment,
        device_profile=SCALED,
        tiered_hot_fraction=0.25,
    )
    tiered_algo = BFS(root=0)
    tiered_stats = GStoreEngine(graph, tiered_cfg).run(tiered_algo)
    assert np.array_equal(tiered_algo.result(), gstore["bfs"][0])
    print(
        f"  tiered storage (25% SSD / 75% HDD): BFS "
        f"{fmt_time(tiered_stats.sim_elapsed)} vs all-SSD "
        f"{fmt_time(sync_stats.sim_elapsed)} — same result, graph "
        f"{fmt_bytes(graph.storage_bytes())} mostly on spinning disks"
    )


if __name__ == "__main__":
    main()
