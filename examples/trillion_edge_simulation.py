#!/usr/bin/env python3
"""The Table III pipeline: semi-external processing of the biggest graph.

Mirrors the paper's headline experiment at local scale: build the largest
Kronecker graph the machine comfortably holds, persist it in the tile
format, reload it *without* the payload (semi-external mode), and run
BFS, PageRank, and WCC over an 8-SSD simulated array — reporting the same
quantities Table III does (runtimes, BFS MTEPS, memory footprint).

Run:  python examples/trillion_edge_simulation.py
"""

import tempfile

from repro import (
    BFS,
    ConnectedComponents,
    EngineConfig,
    GStoreEngine,
    PageRank,
    TiledGraph,
    load_dataset,
)
from repro.util.humanize import fmt_bytes, fmt_time


def main() -> None:
    edges = load_dataset("kron-large-16", tier="small")
    print(f"generated {edges}")

    graph = TiledGraph.from_edge_list(edges, tile_bits=12, group_q=8)
    print(
        f"tiled: {graph.n_tiles:,} tiles, payload {fmt_bytes(graph.storage_bytes())}, "
        f"start-edge file {fmt_bytes(graph.start_edge.storage_bytes())}"
    )

    with tempfile.TemporaryDirectory() as d:
        graph.save(d)
        # Semi-external: the payload stays on disk; the engine streams it.
        external = TiledGraph.load(d, resident=False)

        traditional = graph.info.n_input_edges * 8
        config = EngineConfig(
            memory_bytes=traditional // 8,  # paper: 8GB vs a 64GB graph
            segment_bytes=max(traditional // 256, 64 * 1024),
            n_ssds=8,  # the paper's RAID-0 array
        )

        print(
            f"\nsemi-external run: memory {fmt_bytes(config.memory_bytes)}, "
            f"segments {fmt_bytes(config.segment_bytes)}, 8 simulated SSDs\n"
        )

        rows = []
        for algo in [
            BFS(root=0),
            PageRank(max_iterations=10, tolerance=0.0),
            ConnectedComponents(),
        ]:
            stats = GStoreEngine(external, config).run(algo)
            rows.append((algo.name, stats))
            print(stats.summary())
            print()

        print("Table III (local scale):")
        print(f"{'algorithm':<12} {'sim time':>10} {'MTEPS':>8} {'metadata':>10}")
        for name, stats in rows:
            print(
                f"{name:<12} {fmt_time(stats.sim_elapsed):>10} "
                f"{stats.mteps():>8.0f} {fmt_bytes(stats.metadata_bytes):>10}"
            )


if __name__ == "__main__":
    main()
