#!/usr/bin/env python3
"""Social-network analytics on a Twitter-like graph.

The paper motivates G-Store with social-network workloads: ranking users
(PageRank) and finding communities (connected components) on graphs whose
tile distribution is extremely skewed.  This example runs both on the
Twitter stand-in dataset, prints the influencer ranking, and shows how
the skew materialises at the tile level (paper Figure 5).

Run:  python examples/social_network_analysis.py
"""

import numpy as np

from repro import (
    ConnectedComponents,
    EngineConfig,
    GStoreEngine,
    PageRank,
    TiledGraph,
    load_dataset,
)
from repro.algorithms.triangles import clustering_coefficient


def main() -> None:
    # The Twitter stand-in: directed, heavy-tailed in-degrees, hubs
    # clustered at low IDs like crawl-ordered datasets.
    edges = load_dataset("twitter-small", tier="small")
    print(f"loaded {edges}")
    graph = TiledGraph.from_edge_list(edges.deduped(), tile_bits=11, group_q=8)

    counts = graph.tile_edge_counts()
    print(
        f"tile grid {graph.p}x{graph.p}: "
        f"{(counts == 0).mean():.0%} empty tiles, "
        f"largest tile holds {counts.max() / counts.sum():.1%} of all edges "
        f"(paper Figure 5 shape)"
    )

    config = EngineConfig(
        memory_bytes=graph.storage_bytes() // 2,
        segment_bytes=max(graph.storage_bytes() // 64, 64 * 1024),
    )

    # --- Who are the influencers? -------------------------------------
    pr = PageRank(max_iterations=50, tolerance=1e-10)
    stats = GStoreEngine(graph, config).run(pr)
    print()
    print(stats.summary())
    rank = pr.result()
    top = np.argsort(rank)[::-1][:10]
    in_deg = graph.in_degrees
    print("\ntop-10 vertices by PageRank:")
    for v in top:
        print(f"  vertex {int(v):>8}  rank {rank[v]:.2e}  in-degree {int(in_deg[v]):>7}")

    # --- How connected is the network? --------------------------------
    cc = ConnectedComponents()
    stats = GStoreEngine(graph, config).run(cc)
    print()
    print(stats.summary())
    comp = cc.result()
    labels, sizes = np.unique(comp, return_counts=True)
    order = np.argsort(sizes)[::-1]
    print(f"\n{labels.shape[0]:,} weakly connected components; largest five:")
    for k in order[:5]:
        print(f"  component {int(labels[k]):>8}: {int(sizes[k]):,} vertices")
    giant = sizes.max() / graph.n_vertices
    print(f"giant component covers {giant:.1%} of the network")

    # --- Who matters *to* the top influencer's followers? --------------
    seed = int(top[0])
    ppr = PageRank(
        max_iterations=50, tolerance=1e-10, personalization={seed: 1.0}
    )
    GStoreEngine(graph, config).run(ppr)
    local = ppr.result().copy()
    local[seed] = 0.0  # the seed itself always dominates
    print(
        f"\npersonalised PageRank around vertex {seed}: top neighbourhood "
        f"vertices {np.argsort(local)[::-1][:5].tolist()}"
    )

    # --- How clustered is the graph? -----------------------------------
    cc_global = clustering_coefficient(graph)
    print(f"global clustering coefficient: {cc_global:.4f}")


if __name__ == "__main__":
    main()
