#!/usr/bin/env python3
"""A tour of the storage formats and every space saving in §IV.

Walks the paper's running example (Figure 1) and then a realistic graph
through edge list → CSR → 2-D partitions → tiles, showing the byte cost
of each representation, the SNB encoding of a concrete tile, and the
compressed degree array.

Run:  python examples/storage_formats_tour.py
"""

import numpy as np

from repro import (
    CompressedDegreeArray,
    CSRGraph,
    EdgeList,
    Partitioned2D,
    TiledGraph,
    format_sizes,
    kronecker,
)
from repro.util.humanize import fmt_bytes


def paper_example() -> None:
    print("=== The paper's Figure 1 example graph ===")
    pairs = [(0, 1), (0, 3), (1, 2), (0, 4), (1, 4), (2, 4), (4, 5), (5, 6), (5, 7)]
    el = EdgeList.from_pairs(pairs, n_vertices=8, directed=False)

    sym = el.symmetrized()
    print(f"traditional edge list: {sym.n_edges} tuples (each edge twice)")

    csr = CSRGraph.from_edge_list(sym)
    print(f"CSR beg-pos: {csr.beg_pos.tolist()}")

    grid = Partitioned2D.from_edge_list(sym, 2)
    print(f"2x2 partition edge counts:\n{grid.partition_edge_counts()}")

    tiles = TiledGraph.from_edge_list(el, tile_bits=2, group_q=1)
    print(f"tiles store only {tiles.n_edges} tuples (upper triangle)")
    pos = tiles.position_of(1, 1)
    tv = tiles.tile_view(pos)
    gsrc, gdst = tv.global_edges()
    print("tile[1,1] SNB contents (local -> global):")
    for ls, ld, gs, gd in zip(
        tv.lsrc.tolist(), tv.ldst.tolist(), gsrc.tolist(), gdst.tolist()
    ):
        print(f"  ({ls},{ld}) -> ({gs},{gd})")


def realistic_graph() -> None:
    print("\n=== A Kronecker graph through every format ===")
    el = kronecker(scale=15, edge_factor=16, seed=1)
    canon = el.canonicalized()

    sizes = format_sizes(el.n_vertices, n_undirected_edges=canon.n_edges,
                         tile_bits=10)
    print(f"edge list (8B tuples, both dirs): {fmt_bytes(sizes.edge_list_bytes)}")
    print(f"CSR (both dirs):                  {fmt_bytes(sizes.csr_bytes)}")
    print(f"G-Store tiles:                    {fmt_bytes(sizes.gstore_bytes)}")
    print(
        f"space saving: {sizes.saving_vs_edge_list:.0f}x vs edge list, "
        f"{sizes.saving_vs_csr:.0f}x vs CSR"
    )

    tg = TiledGraph.from_edge_list(el, tile_bits=10, group_q=8)
    assert tg.storage_bytes() == sizes.gstore_bytes
    counts = tg.tile_edge_counts()
    print(
        f"{tg.n_tiles:,} tiles; median {int(np.median(counts))} edges, "
        f"max {int(counts.max())}"
    )

    deg = canon.degrees()
    comp = CompressedDegreeArray.from_degrees(deg)
    plain = CompressedDegreeArray.plain_bytes(el.n_vertices, 4)
    print(
        f"degree array: {fmt_bytes(plain)} plain -> "
        f"{fmt_bytes(comp.storage_bytes())} compressed "
        f"({comp.n_overflow} overflow hubs)"
    )

    print("\nanalytic paper-scale rows (Table II):")
    for nv, ne, label in [
        (2**28, 2**32, "Kron-28-16"),
        (2**33, 2**37, "Kron-33-16"),
    ]:
        s = format_sizes(nv, n_undirected_edges=ne)
        print(
            f"  {label}: {fmt_bytes(s.edge_list_bytes)} / "
            f"{fmt_bytes(s.csr_bytes)} / {fmt_bytes(s.gstore_bytes)} "
            f"({s.saving_vs_edge_list:.0f}x / {s.saving_vs_csr:.0f}x)"
        )


if __name__ == "__main__":
    paper_example()
    realistic_graph()
