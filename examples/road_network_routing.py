#!/usr/bin/env python3
"""Weighted shortest-path routing on a synthetic road network.

A different regime from the social-network workloads: a high-diameter
weighted grid with highway shortcuts, stored in the tile format with its
float32 weights resident, routed with the semi-external SSSP engine.
Shows the weighted pipeline end-to-end and the effect of highways on
travel times.

Run:  python examples/road_network_routing.py
"""

import numpy as np

from repro import EngineConfig, GStoreEngine, SSSP, TiledGraph
from repro.graphgen.lattice import road_network
from repro.util.humanize import fmt_time


def route(el, rows, cols, label):
    graph = TiledGraph.from_edge_list(el, tile_bits=8, group_q=4)
    config = EngineConfig(
        memory_bytes=max(graph.storage_bytes() // 2, 64 * 1024),
        segment_bytes=max(graph.storage_bytes() // 32, 16 * 1024),
    )
    origin = 0  # top-left corner
    sssp = SSSP(root=origin)
    stats = GStoreEngine(graph, config).run(sssp)
    dist = sssp.result()
    corner = rows * cols - 1  # bottom-right corner
    print(f"{label}:")
    print(f"  {stats.summary().splitlines()[0]}")
    print(f"  corner-to-corner travel time: {dist[corner]:.1f}")
    reach = np.isfinite(dist)
    print(
        f"  mean travel time: {dist[reach].mean():.1f} over "
        f"{int(reach.sum()):,} reachable intersections"
    )
    return dist[corner]


def main() -> None:
    rows = cols = 96
    print(f"synthetic road network: {rows}x{cols} intersections\n")

    plain = road_network(rows, cols, seed=7, diagonal_fraction=0.0)
    t_plain = route(plain, rows, cols, "surface streets only")

    print()
    highways = road_network(rows, cols, seed=7, diagonal_fraction=0.15)
    t_highway = route(highways, rows, cols, "with highway shortcuts")

    print(
        f"\nhighways cut the corner-to-corner trip by "
        f"{(1 - t_highway / t_plain):.0%}"
    )


if __name__ == "__main__":
    main()
