#!/usr/bin/env python3
"""Check that every intra-repo markdown link resolves.

Walks the given markdown files (default: README.md, the repo-root *.md,
and everything under docs/), extracts ``[text](target)`` links outside
fenced code blocks, and verifies that each relative target exists on
disk.  External links (``http(s)://``, ``mailto:``) and pure in-page
anchors (``#section``) are skipped; a ``path#anchor`` target is checked
for the path only.

Run:  python tools/check_links.py [files-or-dirs...]
Exit status is the number of broken links (0 = all good) — the second
half of the CI docs-job gate alongside ``gen_api_docs.py --check``.
"""

from __future__ import annotations

import os
import re
import sys

#: Inline links; images share the syntax with a leading ``!``.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_FENCE_RE = re.compile(r"^\s*(```|~~~)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def extract_links(text: str) -> "list[tuple[int, str]]":
    """``(line_number, target)`` for every link outside code fences."""
    links: "list[tuple[int, str]]" = []
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        # Inline code spans can hold example links; strip them.
        stripped = re.sub(r"`[^`]*`", "", line)
        for m in _LINK_RE.finditer(stripped):
            links.append((lineno, m.group(1)))
    return links


def check_file(path: str, repo_root: str) -> "list[str]":
    """Broken-link descriptions for one markdown file."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    errors: "list[str]" = []
    base = os.path.dirname(os.path.abspath(path))
    for lineno, target in extract_links(text):
        if target.startswith(_SKIP_PREFIXES) or target.startswith("#"):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        if rel.startswith("/"):
            resolved = os.path.join(repo_root, rel.lstrip("/"))
        else:
            resolved = os.path.join(base, rel)
        if not os.path.exists(resolved):
            errors.append(
                f"{os.path.relpath(path, repo_root)}:{lineno}: "
                f"broken link -> {target}"
            )
    return errors


def collect_markdown(args: "list[str]", repo_root: str) -> "list[str]":
    if args:
        sources = args
    else:
        sources = [
            os.path.join(repo_root, name)
            for name in sorted(os.listdir(repo_root))
            if name.endswith(".md")
        ]
        sources.append(os.path.join(repo_root, "docs"))
    files: "list[str]" = []
    for src in sources:
        if os.path.isdir(src):
            for dirpath, _dirs, names in os.walk(src):
                files.extend(
                    os.path.join(dirpath, n)
                    for n in sorted(names)
                    if n.endswith(".md")
                )
        elif src.endswith(".md") and os.path.exists(src):
            files.append(src)
    return files


def main(argv: "list[str] | None" = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    files = collect_markdown(argv, repo_root)
    errors: "list[str]" = []
    for path in files:
        errors.extend(check_file(path, repo_root))
    for err in errors:
        print(err)
    print(f"checked {len(files)} files: {len(errors)} broken links")
    return len(errors)


if __name__ == "__main__":
    sys.exit(main())
