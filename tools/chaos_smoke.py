#!/usr/bin/env python
"""CI chaos smoke: seeded fault injection must recover, kill/resume must match.

Five gates (docs/RELIABILITY.md), each exiting non-zero on failure:

1. **Recovery** — a seeded chaos run (transient read errors + short reads
   + latency spikes + one slow RAID member) of BFS and PageRank completes
   with results bit-identical to the clean baseline and nonzero
   ``retry.attempts``.
2. **Determinism** — the same fault seed yields identical injected-fault
   logs, counters, and simulated-clock totals at prefetch depths 0 and 2.
3. **Kill/resume** — a PageRank run killed mid-way by a persistent fault
   resumes from its last checkpoint and reproduces the uninterrupted
   result bit-for-bit.
4. **Shard chaos** — a scripted transport fault kills one shard worker
   mid-run; the supervisor must *respawn* it (never fall back to the
   coordinator path), finish fully sharded, and stay bit-identical to
   the serial baseline at prefetch depths 0 and 2.
5. **Serve chaos** — an engine-side error streak flips ``/healthz`` to
   ``degraded`` and shed queries come back as typed 429s with a
   ``Retry-After`` header; recovery flips it back to ``healthy``.

Usage: PYTHONPATH=src python tools/chaos_smoke.py [--scale 10] [--seed 7]
"""

from __future__ import annotations

import argparse
import sys
import tempfile

import numpy as np

from repro.algorithms.bfs import BFS
from repro.algorithms.pagerank import PageRank
from repro.engine.config import EngineConfig
from repro.engine.gstore import GStoreEngine
from repro.errors import StorageError
from repro.faults import FaultEvent, FaultKind, FaultPlan, FaultRates
from repro.format.tiles import TiledGraph
from repro.graphgen.rmat import rmat

# Rates high enough that a smoke-scale run injects several faults.
RATES = FaultRates(transient=0.10, short_read=0.02, spike=0.10)

_failures = 0


def check(ok: bool, label: str) -> None:
    global _failures
    print(f"  {'ok' if ok else 'FAIL'}: {label}")
    if not ok:
        _failures += 1


def make_config(**kw) -> EngineConfig:
    # A tight budget keeps the graph streaming (and re-streaming), so
    # every iteration issues I/O that faults can land on.
    base = dict(
        memory_bytes=16 * 1024, segment_bytes=4 * 1024, n_ssds=2
    )
    base.update(kw)
    return EngineConfig(**base)


def chaos_plan(seed: int) -> FaultPlan:
    # Seeded request-level chaos plus one slow RAID member.  The explicit
    # transient on ordinal 1 guarantees at least one retry even in a run
    # short enough that the seeded draws land nothing retryable.
    return FaultPlan(
        events=(
            FaultEvent(FaultKind.TRANSIENT, request=1),
            FaultEvent(FaultKind.DEVICE_SLOW, device=0, factor=4.0),
        ),
        seed=seed,
        rates=RATES,
    )


def gate_recovery(tg: TiledGraph, seed: int) -> None:
    print("gate 1: seeded chaos run recovers")
    for name, algo_of, result_of in (
        ("bfs", lambda: BFS(root=0), lambda a: a.depth),
        ("pagerank", lambda: PageRank(max_iterations=15), lambda a: a.rank),
    ):
        clean = algo_of()
        GStoreEngine(tg, make_config()).run(clean)
        chaos = algo_of()
        eng = GStoreEngine(tg, make_config(faults=chaos_plan(seed)))
        eng.run(chaos)
        counters = eng.injector.counters()
        check(
            np.array_equal(result_of(clean), result_of(chaos)),
            f"{name}: chaos result matches clean baseline",
        )
        check(
            counters.get("retry.attempts", 0) > 0,
            f"{name}: retries happened ({counters.get('retry.attempts', 0)} attempts)",
        )
        check(
            counters.get("retry.exhausted", 0) == 0,
            f"{name}: no batch exhausted its retry budget",
        )


def gate_determinism(tg: TiledGraph, seed: int) -> None:
    print("gate 2: fault sequence deterministic across prefetch depths")
    runs = []
    for depth in (0, 2):
        eng = GStoreEngine(
            tg, make_config(faults=chaos_plan(seed), prefetch_depth=depth)
        )
        stats = eng.run(BFS(root=0))
        runs.append(
            (eng.injector.log_tuples(), eng.injector.counters(), stats.sim_elapsed)
        )
    check(runs[0][0] == runs[1][0], f"identical fault log ({len(runs[0][0])} events)")
    check(runs[0][1] == runs[1][1], "identical fault/retry counters")
    check(runs[0][2] == runs[1][2], f"identical sim-clock total ({runs[0][2]:.6f}s)")


def gate_kill_resume(tg: TiledGraph) -> None:
    print("gate 3: fault-killed run resumes bit-for-bit")
    cfg = dict(prefetch_depth=0)
    clean = PageRank(max_iterations=15)
    GStoreEngine(tg, make_config(**cfg)).run(clean)

    # Kill mid-run: one AIO batch issues per streamed segment, so half
    # the clean run's request count lands several iterations in.
    probe = GStoreEngine(tg, make_config(**cfg))
    probe.run(PageRank(max_iterations=15))
    kill_at = probe.aio.stats.requests // 2

    with tempfile.TemporaryDirectory() as ckpt:
        doomed = PageRank(max_iterations=15)
        try:
            GStoreEngine(
                tg,
                make_config(
                    faults=FaultPlan.parse(f"persistent@{kill_at}"), **cfg
                ),
            ).run(doomed, checkpoint=ckpt)
        except StorageError as exc:
            print(f"  killed as planned at ordinal {kill_at}: {exc.args[0]}")
        else:
            check(False, f"persistent@{kill_at} should have killed the run")
            return
        check(
            doomed.iterations_run < clean.iterations_run,
            "run died before convergence",
        )
        resumed = PageRank(max_iterations=15)
        GStoreEngine(tg, make_config(**cfg)).run(resumed, checkpoint=ckpt)
        check(
            np.array_equal(clean.rank, resumed.rank),
            "resumed rank vector is bit-identical to the uninterrupted run",
        )
        check(
            resumed.iterations_run == clean.iterations_run,
            "resumed run converged at the same iteration",
        )


def gate_shard_chaos(tg: TiledGraph) -> None:
    print("gate 4: killed shard worker respawns, stays sharded + identical")
    from repro.runtime.threads import LIVE_SHM_SEGMENTS

    clean = PageRank(max_iterations=10, tolerance=1e-12)
    GStoreEngine(tg, make_config()).run(clean)

    for depth in (0, 2):
        chaos = PageRank(max_iterations=10, tolerance=1e-12)
        eng = GStoreEngine(
            tg,
            make_config(
                shards=2,
                prefetch_depth=depth,
                faults=FaultPlan.parse("kill:0@2"),
            ),
        )
        stats = eng.run(chaos)
        eng.close()
        sup = stats.extra["supervisor"]
        check(
            np.array_equal(clean.rank, chaos.rank),
            f"depth {depth}: post-kill rank matches serial baseline",
        )
        check(
            stats.extra["execution"]["shards_resolved"] == 2,
            f"depth {depth}: run finished sharded (no coordinator fallback)",
        )
        check(
            sup["respawns"] == 1 and sup["worker_deaths"] == 1,
            f"depth {depth}: exactly one respawn "
            f"({sup['replayed_batches']} batches replayed)",
        )
        check(not LIVE_SHM_SEGMENTS, f"depth {depth}: no leaked shm segment")


def gate_serve_chaos(tg: TiledGraph) -> None:
    print("gate 5: degraded engine flips /healthz, shed queries get typed 429s")
    import json
    import threading
    import urllib.error
    import urllib.request

    from repro.errors import StorageError as _SE
    from repro.serve import BFSQuery, QueryService, ServiceConfig
    from repro.serve.http import make_server

    class _FailingQuery(BFSQuery):
        # Engine-side failure: retryable storage trouble that outlives
        # the serve-level retry budget, feeding the error streak.
        def cache_key(self):
            return ("failing", int(self.root))

        def run(self, engine, ctx):
            raise _SE("injected device failure", retryable=True)

    eng = GStoreEngine(tg, make_config())
    svc = QueryService(
        eng,
        ServiceConfig(
            workers=2, queue_depth=8, retry_attempts=1,
            health_error_threshold=2, health_recovery_threshold=2,
        ),
    )
    try:
        try:
            server = make_server(svc, host="127.0.0.1", port=0)
        except OSError as exc:
            print(f"  skip: sockets unavailable ({exc})")
            return
        host, port = server.server_address[:2]
        threading.Thread(target=server.serve_forever, daemon=True).start()
        base = f"http://{host}:{port}"
        try:
            with urllib.request.urlopen(base + "/healthz", timeout=10) as r:
                check(json.load(r)["status"] == "healthy", "starts healthy")
            for i in range(2):
                try:
                    svc.execute(_FailingQuery(root=i))
                except _SE:
                    pass
            with urllib.request.urlopen(base + "/healthz", timeout=10) as r:
                health = json.load(r)
            check(
                health["status"] == "degraded"
                and "error_streak" in health["reasons"],
                f"error streak degrades /healthz (reasons: {health['reasons']})",
            )
            stats = svc.stats()
            check(
                stats.get("serve.retries", 0) > 0
                and stats.get("serve.retry_exhausted", 0) > 0,
                "storage retries ran and exhausted their budget",
            )
            # Degraded admission clamps to queue_depth//2 = 4: saturate
            # with stalled queries, then watch a shed 429 come back.
            release = threading.Event()
            started = threading.Event()

            class _Stall(BFSQuery):
                def run(self, engine, ctx):
                    started.set()
                    release.wait(timeout=30)
                    return super().run(engine, ctx)

            futures = [svc.submit(_Stall(root=r)) for r in range(4)]
            started.wait(timeout=30)
            req = urllib.request.Request(
                base + "/query",
                data=json.dumps({"type": "bfs", "root": 9}).encode(),
            )
            try:
                urllib.request.urlopen(req, timeout=10)
                check(False, "shed query should have been rejected")
            except urllib.error.HTTPError as exc:
                body = json.load(exc)
                check(
                    exc.code == 429
                    and body["code"] == "shed_degraded"
                    and int(exc.headers["Retry-After"]) >= 1,
                    f"shed query rejected with typed 429 ({body['code']}, "
                    f"Retry-After {exc.headers['Retry-After']}s)",
                )
            release.set()
            for f in futures:
                f.result()
            svc.execute(BFSQuery(root=1))
            with urllib.request.urlopen(base + "/healthz", timeout=10) as r:
                check(
                    json.load(r)["status"] == "healthy",
                    "success streak recovers to healthy",
                )
        finally:
            server.shutdown()
            server.server_close()
    finally:
        svc.close()
        eng.close()


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", type=int, default=10, help="R-MAT scale")
    ap.add_argument("--seed", type=int, default=7, help="fault plan seed")
    args = ap.parse_args()

    el = rmat(args.scale, edge_factor=8, seed=11, directed=False)
    tg = TiledGraph.from_edge_list(el, tile_bits=7, group_q=2)
    print(f"graph: {tg.info.name} |V|={tg.info.n_vertices} |E|={tg.info.n_edges}")

    gate_recovery(tg, args.seed)
    gate_determinism(tg, args.seed)
    gate_kill_resume(tg)
    gate_shard_chaos(tg)
    gate_serve_chaos(tg)

    if _failures:
        print(f"chaos smoke: {_failures} gate(s) FAILED")
        return 1
    print("chaos smoke: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
